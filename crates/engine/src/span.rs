//! Per-query spans: the engine-level complement of the per-round
//! telemetry in `ligra::stats`.
//!
//! Every submitted query leaves exactly one `QuerySpan` behind — queue
//! wait, run time, edgeMap rounds executed (the acceptance probe for
//! cancellation: a cancelled query reports how many rounds it got
//! through before yielding), terminal status, and whether it was served
//! from the result cache. Export follows the flat-JSONL convention of
//! `ligra::trace`: one object per line, string and integer fields only.

use crate::metrics::bucket_index;
use ligra::stats::{Op, RoundStat};
use ligra::{Recorder, TraversalStats};

/// Terminal (and transient) states of a submitted query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished; result available.
    Done,
    /// Cancelled (explicitly or by deadline); partial result discarded.
    Cancelled,
    /// The query was invalid for the snapshot it ran against, or an
    /// injected transient fault surfaced as a typed error.
    Failed,
    /// The query panicked; the worker caught the unwind and self-healed.
    Panicked,
    /// Retired without running: its queue wait had already consumed the
    /// deadline when a worker picked it up.
    Shed,
}

impl QueryStatus {
    /// Stable lowercase name used on the wire and in exports.
    pub fn name(self) -> &'static str {
        match self {
            QueryStatus::Queued => "queued",
            QueryStatus::Running => "running",
            QueryStatus::Done => "done",
            QueryStatus::Cancelled => "cancelled",
            QueryStatus::Failed => "failed",
            QueryStatus::Panicked => "panicked",
            QueryStatus::Shed => "shed",
        }
    }

    /// Whether the query has reached a final state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            QueryStatus::Done
                | QueryStatus::Cancelled
                | QueryStatus::Failed
                | QueryStatus::Panicked
                | QueryStatus::Shed
        )
    }
}

impl std::fmt::Display for QueryStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One query's lifecycle record.
#[derive(Debug, Clone)]
pub struct QuerySpan {
    /// Engine-assigned query id.
    pub id: u64,
    /// Correlation id: client-supplied on the wire or engine-generated.
    /// The same id names the query's on-disk kernel trace
    /// (`query-<trace_id>.jsonl` under the trace dir), joining this
    /// span to its per-round edgeMap rows. Restricted to
    /// `[A-Za-z0-9_-]` so it embeds raw in JSON and file names.
    pub trace_id: String,
    /// Query name (`bfs`, `pagerank`, ...).
    pub query: String,
    /// Snapshot epoch the query was bound to.
    pub epoch: u64,
    /// Terminal status.
    pub status: QueryStatus,
    /// Served from the result cache without running.
    pub cache_hit: bool,
    /// Nanoseconds between admission and a worker picking the query up.
    pub queue_wait_ns: u64,
    /// Metrics-histogram bucket `queue_wait_ns` falls in
    /// (`metrics::bucket_index`) — lets span consumers aggregate
    /// exactly like the engine's own histograms without redoing the
    /// bucket math.
    pub queue_wait_bucket: u64,
    /// Nanoseconds of execution (0 for cache hits and pre-run cancels).
    pub run_ns: u64,
    /// Metrics-histogram bucket `run_ns` falls in.
    pub run_bucket: u64,
    /// edgeMap rounds executed before completion or cancellation.
    pub rounds: u64,
    /// All recorded telemetry events (edgeMap + vertexMap/filter).
    pub events: u64,
    /// Times the scheduler re-enqueued this query after a transient
    /// dispatch fault (0 outside fault-injection runs).
    pub retries: u64,
}

/// Serializes spans in the repo's flat-JSONL trace style: one object per
/// line, fixed key order, no nesting.
pub fn spans_to_json_lines(spans: &[QuerySpan]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&span_to_json(s));
        out.push('\n');
    }
    out
}

/// One span as a single flat JSON object (no trailing newline).
pub fn span_to_json(s: &QuerySpan) -> String {
    format!(
        "{{\"id\":{},\"trace_id\":\"{}\",\"query\":\"{}\",\"epoch\":{},\"status\":\"{}\",\
         \"cache_hit\":{},\"queue_wait_ns\":{},\"queue_wait_bucket\":{},\"run_ns\":{},\
         \"run_bucket\":{},\"rounds\":{},\"events\":{},\"retries\":{}}}",
        s.id,
        s.trace_id,
        s.query,
        s.epoch,
        s.status,
        s.cache_hit,
        s.queue_wait_ns,
        s.queue_wait_bucket,
        s.run_ns,
        s.run_bucket,
        s.rounds,
        s.events,
        s.retries
    )
}

/// Stamps the bucket fields from the span's own `_ns` fields, keeping
/// them consistent with the engine's histogram bucketing by
/// construction.
pub fn fill_span_buckets(s: &mut QuerySpan) {
    s.queue_wait_bucket = bucket_index(s.queue_wait_ns) as u64;
    s.run_bucket = bucket_index(s.run_ns) as u64;
}

/// A [`Recorder`] that counts rounds instead of storing them: the engine
/// wants "how many edgeMap rounds did this query execute" (cheap, O(1)
/// memory) rather than the full per-round trace.
#[derive(Debug, Default)]
pub struct RoundCounter {
    /// Recorded `Op::EdgeMap` events.
    pub edge_map_rounds: u64,
    /// All recorded events.
    pub events: u64,
    /// Rounds that ran the partitioned scatter/gather traversal. Feeds
    /// the `ligra_partition_rounds_total` metrics counter, not the
    /// pinned span schema.
    pub partitioned_rounds: u64,
    /// Non-empty scatter bins drained across partitioned rounds.
    pub bins_flushed: u64,
    /// Bytes of bin entries scattered across partitioned rounds.
    pub scatter_bytes: u64,
}

impl Recorder for RoundCounter {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, round: RoundStat) {
        self.events += 1;
        if round.op == Op::EdgeMap {
            self.edge_map_rounds += 1;
            if round.mode == ligra::stats::Mode::Partitioned {
                self.partitioned_rounds += 1;
            }
            self.bins_flushed += round.bins_flushed;
            self.scatter_bytes += round.scatter_bytes;
        }
    }
}

/// A [`Recorder`] that always keeps the engine's O(1) round counts and
/// — when the trace join is enabled — also accumulates the full
/// per-round [`TraversalStats`], so the scheduler can write the
/// query's kernel trace to disk under its `trace_id` without paying
/// for full traces on runs nobody asked to trace.
#[derive(Debug, Default)]
pub struct TeeRecorder {
    /// The cheap always-on counts that feed the span.
    pub counter: RoundCounter,
    /// Full per-round rows, present only when tracing was requested.
    pub trace: Option<TraversalStats>,
}

impl TeeRecorder {
    /// A recorder that counts rounds; with `trace_rows` it also keeps
    /// every row for the on-disk kernel-trace join.
    pub fn new(trace_rows: bool) -> Self {
        TeeRecorder {
            counter: RoundCounter::default(),
            trace: trace_rows.then(TraversalStats::new),
        }
    }
}

impl Recorder for TeeRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, round: RoundStat) {
        self.counter.record(round);
        if let Some(t) = &mut self.trace {
            t.record(round);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ligra::EdgeMapOptions;
    use ligra_apps::bfs_traced;
    use ligra_graph::generators::path;

    #[test]
    fn round_counter_counts_bfs_depth() {
        let g = path(6);
        let mut rc = RoundCounter::default();
        let r = bfs_traced(&g, 0, EdgeMapOptions::new(), &mut rc);
        assert_eq!(rc.edge_map_rounds as usize, r.rounds);
        assert!(rc.events >= rc.edge_map_rounds);
    }

    #[test]
    fn span_json_is_one_flat_line() {
        let mut s = QuerySpan {
            id: 7,
            trace_id: "abc-123".into(),
            query: "bfs".into(),
            epoch: 2,
            status: QueryStatus::Cancelled,
            cache_hit: false,
            queue_wait_ns: 10,
            queue_wait_bucket: 0,
            run_ns: 20,
            run_bucket: 0,
            rounds: 3,
            events: 9,
            retries: 1,
        };
        fill_span_buckets(&mut s);
        let line = span_to_json(&s);
        assert!(!line.contains('\n'));
        assert!(line.contains("\"trace_id\":\"abc-123\""));
        assert!(line.contains("\"status\":\"cancelled\""));
        assert!(line.contains("\"rounds\":3"));
        assert!(line.contains("\"retries\":1"));
        // Buckets are derived from the _ns fields by the shared bucket math.
        assert!(line.contains(&format!("\"queue_wait_bucket\":{}", bucket_index(10))));
        assert!(line.contains(&format!("\"run_bucket\":{}", bucket_index(20))));
    }

    #[test]
    fn tee_recorder_counts_and_optionally_traces() {
        let g = path(6);
        let mut plain = TeeRecorder::new(false);
        let _ = bfs_traced(&g, 0, EdgeMapOptions::new(), &mut plain);
        assert!(plain.trace.is_none());
        assert!(plain.counter.edge_map_rounds > 0);

        let mut traced = TeeRecorder::new(true);
        let _ = bfs_traced(&g, 0, EdgeMapOptions::new(), &mut traced);
        assert_eq!(traced.counter.edge_map_rounds, plain.counter.edge_map_rounds);
        let rows = traced.trace.expect("trace rows requested");
        let edge_rounds = rows.rounds.iter().filter(|r| r.op == Op::EdgeMap).count() as u64;
        assert_eq!(edge_rounds, traced.counter.edge_map_rounds);
    }

    #[test]
    fn status_vocabulary_is_closed() {
        // Pin the wire vocabulary: adding a status is a protocol change
        // and must update this list, DESIGN.md §11, and the serving docs.
        let all = [
            QueryStatus::Queued,
            QueryStatus::Running,
            QueryStatus::Done,
            QueryStatus::Cancelled,
            QueryStatus::Failed,
            QueryStatus::Panicked,
            QueryStatus::Shed,
        ];
        let names: Vec<&str> = all.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["queued", "running", "done", "cancelled", "failed", "panicked", "shed"]);
        for s in all {
            assert_eq!(s.is_terminal(), !matches!(s, QueryStatus::Queued | QueryStatus::Running));
        }
    }
}
