//! Per-query spans: the engine-level complement of the per-round
//! telemetry in `ligra::stats`.
//!
//! Every submitted query leaves exactly one `QuerySpan` behind — queue
//! wait, run time, edgeMap rounds executed (the acceptance probe for
//! cancellation: a cancelled query reports how many rounds it got
//! through before yielding), terminal status, and whether it was served
//! from the result cache. Export follows the flat-JSONL convention of
//! `ligra::trace`: one object per line, string and integer fields only.

use ligra::stats::{Op, RoundStat};
use ligra::Recorder;

/// Terminal (and transient) states of a submitted query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryStatus {
    /// Accepted, waiting for a worker.
    Queued,
    /// Executing on a worker.
    Running,
    /// Finished; result available.
    Done,
    /// Cancelled (explicitly or by deadline); partial result discarded.
    Cancelled,
    /// The query was invalid for the snapshot it ran against, or an
    /// injected transient fault surfaced as a typed error.
    Failed,
    /// The query panicked; the worker caught the unwind and self-healed.
    Panicked,
    /// Retired without running: its queue wait had already consumed the
    /// deadline when a worker picked it up.
    Shed,
}

impl QueryStatus {
    /// Stable lowercase name used on the wire and in exports.
    pub fn name(self) -> &'static str {
        match self {
            QueryStatus::Queued => "queued",
            QueryStatus::Running => "running",
            QueryStatus::Done => "done",
            QueryStatus::Cancelled => "cancelled",
            QueryStatus::Failed => "failed",
            QueryStatus::Panicked => "panicked",
            QueryStatus::Shed => "shed",
        }
    }

    /// Whether the query has reached a final state.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            QueryStatus::Done
                | QueryStatus::Cancelled
                | QueryStatus::Failed
                | QueryStatus::Panicked
                | QueryStatus::Shed
        )
    }
}

impl std::fmt::Display for QueryStatus {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One query's lifecycle record.
#[derive(Debug, Clone)]
pub struct QuerySpan {
    /// Engine-assigned query id.
    pub id: u64,
    /// Query name (`bfs`, `pagerank`, ...).
    pub query: String,
    /// Snapshot epoch the query was bound to.
    pub epoch: u64,
    /// Terminal status.
    pub status: QueryStatus,
    /// Served from the result cache without running.
    pub cache_hit: bool,
    /// Nanoseconds between admission and a worker picking the query up.
    pub queue_wait_ns: u64,
    /// Nanoseconds of execution (0 for cache hits and pre-run cancels).
    pub run_ns: u64,
    /// edgeMap rounds executed before completion or cancellation.
    pub rounds: u64,
    /// All recorded telemetry events (edgeMap + vertexMap/filter).
    pub events: u64,
    /// Times the scheduler re-enqueued this query after a transient
    /// dispatch fault (0 outside fault-injection runs).
    pub retries: u64,
}

/// Serializes spans in the repo's flat-JSONL trace style: one object per
/// line, fixed key order, no nesting.
pub fn spans_to_json_lines(spans: &[QuerySpan]) -> String {
    let mut out = String::new();
    for s in spans {
        out.push_str(&span_to_json(s));
        out.push('\n');
    }
    out
}

/// One span as a single flat JSON object (no trailing newline).
pub fn span_to_json(s: &QuerySpan) -> String {
    format!(
        "{{\"id\":{},\"query\":\"{}\",\"epoch\":{},\"status\":\"{}\",\"cache_hit\":{},\
         \"queue_wait_ns\":{},\"run_ns\":{},\"rounds\":{},\"events\":{},\"retries\":{}}}",
        s.id,
        s.query,
        s.epoch,
        s.status,
        s.cache_hit,
        s.queue_wait_ns,
        s.run_ns,
        s.rounds,
        s.events,
        s.retries
    )
}

/// A [`Recorder`] that counts rounds instead of storing them: the engine
/// wants "how many edgeMap rounds did this query execute" (cheap, O(1)
/// memory) rather than the full per-round trace.
#[derive(Debug, Default)]
pub struct RoundCounter {
    /// Recorded `Op::EdgeMap` events.
    pub edge_map_rounds: u64,
    /// All recorded events.
    pub events: u64,
}

impl Recorder for RoundCounter {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, round: RoundStat) {
        self.events += 1;
        if round.op == Op::EdgeMap {
            self.edge_map_rounds += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ligra::EdgeMapOptions;
    use ligra_apps::bfs_traced;
    use ligra_graph::generators::path;

    #[test]
    fn round_counter_counts_bfs_depth() {
        let g = path(6);
        let mut rc = RoundCounter::default();
        let r = bfs_traced(&g, 0, EdgeMapOptions::new(), &mut rc);
        assert_eq!(rc.edge_map_rounds as usize, r.rounds);
        assert!(rc.events >= rc.edge_map_rounds);
    }

    #[test]
    fn span_json_is_one_flat_line() {
        let s = QuerySpan {
            id: 7,
            query: "bfs".into(),
            epoch: 2,
            status: QueryStatus::Cancelled,
            cache_hit: false,
            queue_wait_ns: 10,
            run_ns: 20,
            rounds: 3,
            events: 9,
            retries: 1,
        };
        let line = span_to_json(&s);
        assert!(!line.contains('\n'));
        assert!(line.contains("\"status\":\"cancelled\""));
        assert!(line.contains("\"rounds\":3"));
        assert!(line.contains("\"retries\":1"));
    }

    #[test]
    fn status_vocabulary_is_closed() {
        // Pin the wire vocabulary: adding a status is a protocol change
        // and must update this list, DESIGN.md §11, and the serving docs.
        let all = [
            QueryStatus::Queued,
            QueryStatus::Running,
            QueryStatus::Done,
            QueryStatus::Cancelled,
            QueryStatus::Failed,
            QueryStatus::Panicked,
            QueryStatus::Shed,
        ];
        let names: Vec<&str> = all.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["queued", "running", "done", "cancelled", "failed", "panicked", "shed"]);
        for s in all {
            assert_eq!(s.is_terminal(), !matches!(s, QueryStatus::Queued | QueryStatus::Running));
        }
    }
}
