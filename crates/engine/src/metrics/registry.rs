//! The live metric instruments and their sampled snapshot.
//!
//! [`MetricsRegistry`] is the single allocation of instruments the
//! whole serving tier records into: the scheduler (admission, queue,
//! workers), the wire reader, and — indirectly, read at sample time —
//! the result cache and the fault plan. It is deliberately a struct of
//! named fields rather than a string-keyed map: the metric vocabulary
//! is closed (pinned by tests), lookups are field accesses on the hot
//! path, and a typo is a compile error instead of a silently new
//! time series.
//!
//! [`MetricsSnapshot`] is the read side: one point-in-time fold of
//! every instrument plus the lock-guarded values (cache counters,
//! fault injections) and static configuration (worker count, budget).
//! Both the `metrics` wire op and the Prometheus exposition render
//! from the same snapshot, so the two surfaces can never disagree.

use super::{Counter, Gauge, Histogram, HistogramSnapshot};
use crate::query::Query;

/// Number of query kinds ([`Query::KIND_NAMES`]); the per-kind
/// histogram arrays are indexed by [`Query::kind_index`].
pub const N_KINDS: usize = Query::KIND_NAMES.len();

/// Lock-free instruments for the serving tier. Shared by `Arc` between
/// the engine, its workers, and the wire front-end.
#[derive(Default, Debug)]
pub struct MetricsRegistry {
    // --- admission & queue ---
    /// Queries accepted into the engine (including cache hits).
    pub submitted: Counter,
    /// Queries refused at admission (queue full).
    pub rejected: Counter,
    /// Queries shed at admission by the overload policy (memory budget).
    pub overload_sheds: Counter,
    /// Jobs currently waiting in the queue.
    pub queue_depth: Gauge,
    /// Estimated bytes of all admitted-but-unfinished work.
    pub inflight_bytes: Gauge,
    /// Configured memory budget (0 = unlimited); set once at startup.
    pub memory_budget_bytes: Gauge,

    // --- worker pool ---
    /// Jobs currently executing on a worker.
    pub running: Gauge,
    /// Terminal outcomes by status, indexed like `RETIRE_STATUSES`.
    retired: [Counter; 5],
    /// Fault-injected dispatches re-enqueued for another attempt.
    pub retries: Counter,
    /// Nanoseconds workers spent executing jobs.
    pub worker_busy_ns: Counter,
    /// Nanoseconds workers spent parked waiting for work.
    pub worker_idle_ns: Counter,

    // --- partitioned-traversal kernel counters ---
    /// edgeMap rounds that ran the partitioned scatter/gather traversal.
    pub partition_rounds: Counter,
    /// Non-empty scatter bins drained by partitioned rounds.
    pub partition_bins_flushed: Counter,
    /// Bytes of bin entries scattered by partitioned rounds.
    pub partition_scatter_bytes: Counter,

    // --- live mutation subsystem ---
    /// Mutation batches applied (each publishes an epoch).
    pub mutation_batches: Counter,
    /// Arcs inserted by mutation batches (set-semantics no-ops excluded).
    pub mutation_edges_added: Counter,
    /// Arc copies removed by mutation tombstones.
    pub mutation_edges_deleted: Counter,
    /// Arcs held in the serving snapshot's delta overlay right now.
    pub mutation_overlay_edges: Gauge,
    /// Vertices touched by the serving snapshot's overlay right now.
    pub mutation_overlay_vertices: Gauge,
    /// Background compactions that installed a clean CSR.
    pub mutation_compactions: Counter,
    /// Compactions that failed or panicked without touching the store.
    pub mutation_compaction_failures: Counter,
    /// Wall-clock nanoseconds per successful compaction.
    mutation_compact_time: Histogram,

    // --- latency histograms, per query kind ---
    queue_wait: [Histogram; N_KINDS],
    run_time: [Histogram; N_KINDS],

    // --- wire front-end ---
    /// Request lines received (well-formed or not).
    pub wire_requests: Counter,
    /// Bytes read off accepted connections / stdin.
    pub wire_bytes: Counter,
    /// Lines rejected before dispatch: oversized, non-UTF-8, or unparseable.
    pub wire_malformed: Counter,
}

/// Terminal statuses a job can retire with, in the order the `retired`
/// counters (and the Prometheus `status` label) use. `shed` here means
/// a queue-deadline shed — overload sheds at admission never become
/// jobs and are counted separately.
pub const RETIRE_STATUSES: [&str; 5] = ["done", "cancelled", "failed", "panicked", "shed"];

impl MetricsRegistry {
    /// A zeroed registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counts one terminal outcome; `status_index` indexes
    /// [`RETIRE_STATUSES`] (clamped defensively to the last slot).
    #[inline]
    pub fn retire(&self, status_index: usize) {
        self.retired[status_index.min(RETIRE_STATUSES.len() - 1)].incr();
    }

    /// Terminal-outcome count for one [`RETIRE_STATUSES`] slot.
    pub fn retired(&self, status_index: usize) -> u64 {
        self.retired[status_index.min(RETIRE_STATUSES.len() - 1)].get()
    }

    /// Records how long a job of `kind` waited in the queue.
    #[inline]
    pub fn observe_queue_wait(&self, kind: usize, ns: u64) {
        self.queue_wait[kind % N_KINDS].record(ns);
    }

    /// Records how long a job of `kind` ran on a worker.
    #[inline]
    pub fn observe_run_time(&self, kind: usize, ns: u64) {
        self.run_time[kind % N_KINDS].record(ns);
    }

    /// Snapshot of one kind's queue-wait histogram.
    pub fn queue_wait_snapshot(&self, kind: usize) -> HistogramSnapshot {
        self.queue_wait[kind % N_KINDS].snapshot()
    }

    /// Snapshot of one kind's run-time histogram.
    pub fn run_time_snapshot(&self, kind: usize) -> HistogramSnapshot {
        self.run_time[kind % N_KINDS].snapshot()
    }

    /// All queue-wait histograms folded into one.
    pub fn merged_queue_wait(&self) -> HistogramSnapshot {
        merge_all(&self.queue_wait)
    }

    /// All run-time histograms folded into one.
    pub fn merged_run_time(&self) -> HistogramSnapshot {
        merge_all(&self.run_time)
    }

    /// Records one successful compaction's wall-clock duration.
    #[inline]
    pub fn observe_compaction(&self, ns: u64) {
        self.mutation_compact_time.record(ns);
    }

    /// Snapshot of the compaction-duration histogram.
    pub fn compaction_snapshot(&self) -> HistogramSnapshot {
        self.mutation_compact_time.snapshot()
    }
}

fn merge_all(hs: &[Histogram; N_KINDS]) -> HistogramSnapshot {
    let mut out = HistogramSnapshot::empty();
    for h in hs {
        out.merge(&h.snapshot());
    }
    out
}

/// A point-in-time reading of every metric the serving tier exports.
/// Produced by `Engine::metrics_snapshot`; consumed by the `metrics`
/// wire op and [`super::prometheus::render`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Epoch of the currently installed graph snapshot (0 = none).
    pub epoch: u64,
    /// Configured worker count.
    pub workers: u64,
    /// Configured queue capacity.
    pub queue_capacity: u64,
    /// Jobs waiting in the queue.
    pub queue_depth: u64,
    /// Jobs executing on workers.
    pub running: u64,
    /// Estimated in-flight bytes.
    pub inflight_bytes: u64,
    /// Configured memory budget (0 = unlimited).
    pub memory_budget_bytes: u64,
    /// Queries accepted.
    pub submitted: u64,
    /// Queries refused (queue full).
    pub rejected: u64,
    /// Overload sheds at admission.
    pub overload_sheds: u64,
    /// Terminal outcomes, indexed like [`RETIRE_STATUSES`].
    pub retired: [u64; RETIRE_STATUSES.len()],
    /// Fault-retry re-enqueues.
    pub retries: u64,
    /// Worker busy nanoseconds.
    pub worker_busy_ns: u64,
    /// Worker idle nanoseconds.
    pub worker_idle_ns: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache LRU evictions.
    pub cache_evictions: u64,
    /// Result-cache resident entries.
    pub cache_entries: u64,
    /// Partitioned edgeMap rounds executed.
    pub partition_rounds: u64,
    /// Scatter bins flushed by partitioned rounds.
    pub partition_bins_flushed: u64,
    /// Bytes scattered into bins by partitioned rounds.
    pub partition_scatter_bytes: u64,
    /// Mutation batches applied.
    pub mutation_batches: u64,
    /// Arcs inserted by mutation batches.
    pub mutation_edges_added: u64,
    /// Arc copies removed by mutation tombstones.
    pub mutation_edges_deleted: u64,
    /// Arcs in the serving snapshot's delta overlay.
    pub mutation_overlay_edges: u64,
    /// Vertices touched by the serving snapshot's overlay.
    pub mutation_overlay_vertices: u64,
    /// Successful background compactions.
    pub mutation_compactions: u64,
    /// Failed/panicked compactions.
    pub mutation_compaction_failures: u64,
    /// Compaction-duration histogram (nanoseconds).
    pub mutation_compact_time: HistogramSnapshot,
    /// Faults fired, one `(point name, count)` per fault point (all
    /// zero when no plan is armed).
    pub fault_injections: Vec<(&'static str, u64)>,
    /// Per-kind queue-wait histograms, `(kind name, snapshot)` in
    /// [`Query::KIND_NAMES`] order.
    pub queue_wait: Vec<(&'static str, HistogramSnapshot)>,
    /// Per-kind run-time histograms, same order.
    pub run_time: Vec<(&'static str, HistogramSnapshot)>,
    /// Wire request lines seen.
    pub wire_requests: u64,
    /// Wire bytes read.
    pub wire_bytes: u64,
    /// Wire lines rejected as malformed.
    pub wire_malformed: u64,
}

impl MetricsSnapshot {
    /// All queue-wait histograms folded into one.
    pub fn merged_queue_wait(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::empty();
        for (_, h) in &self.queue_wait {
            out.merge(h);
        }
        out
    }

    /// All run-time histograms folded into one.
    pub fn merged_run_time(&self) -> HistogramSnapshot {
        let mut out = HistogramSnapshot::empty();
        for (_, h) in &self.run_time {
            out.merge(h);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_names_and_retire_statuses_are_closed() {
        assert_eq!(N_KINDS, 8);
        assert_eq!(RETIRE_STATUSES, ["done", "cancelled", "failed", "panicked", "shed"]);
    }

    #[test]
    fn retire_indexes_and_clamps() {
        let r = MetricsRegistry::new();
        r.retire(0);
        r.retire(0);
        r.retire(4);
        r.retire(999); // defensive clamp lands in the last slot
        assert_eq!(r.retired(0), 2);
        assert_eq!(r.retired(4), 2);
        assert_eq!(r.retired(1), 0);
    }

    #[test]
    fn per_kind_histograms_merge() {
        let r = MetricsRegistry::new();
        r.observe_run_time(0, 100);
        r.observe_run_time(3, 1_000_000);
        let merged = r.merged_run_time();
        assert_eq!(merged.count, 2);
        assert_eq!(merged.max, 1_000_000);
        assert_eq!(r.run_time_snapshot(0).count, 1);
        assert_eq!(r.run_time_snapshot(1).count, 0);
    }
}
