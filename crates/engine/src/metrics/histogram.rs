//! Log-bucketed latency histograms with striped atomic recording.
//!
//! A [`Histogram`] counts `u64` observations (nanoseconds, by
//! convention) into power-of-two buckets: bucket 0 holds exact zeros,
//! bucket `i` (1 ≤ i ≤ [`MAX_FINITE_BUCKET`]) holds values in
//! `[2^(i-1), 2^i)`, and the last bucket is the overflow (`+Inf`)
//! bucket. Log bucketing gives ~2× relative resolution across twelve
//! decades for a fixed 40-slot footprint — the right trade for serving
//! latencies, where the interesting structure is "which power of two"
//! rather than exact nanoseconds.
//!
//! Recording is lock-free and contention-free: buckets are striped
//! across [`STRIPES`] cache-line-aligned slabs, each worker thread
//! hashing to its own slab (see [`stripe_id`]), so a record is two
//! relaxed `fetch_add`s plus one relaxed `fetch_max` on lines no other
//! core is writing. Readers fold the stripes into a
//! [`HistogramSnapshot`] — a plain value that merges with other
//! snapshots and answers p50/p95/p99/max queries exactly from the
//! bucket counts (quantiles are bucket upper bounds clamped to the
//! recorded maximum, so they are deterministic given the counts).

use super::{stripe_id, STRIPES};
use std::sync::atomic::{AtomicU64, Ordering};

/// Total bucket count: the zero bucket, 38 finite power-of-two buckets
/// (up to `2^38` ns ≈ 275 s), and one overflow bucket.
pub const BUCKETS: usize = 40;

/// Index of the last finite bucket; `BUCKETS - 1` is the overflow
/// (`+Inf`) bucket.
pub const MAX_FINITE_BUCKET: usize = BUCKETS - 2;

/// The bucket an observation lands in: 0 for zero, `floor(log2 v) + 1`
/// for positive values, clamped into the overflow bucket.
#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((64 - v.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// The largest value bucket `i` can hold (`u64::MAX` for the overflow
/// bucket); the `le` bound the Prometheus exposition prints.
#[inline]
pub fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i <= MAX_FINITE_BUCKET => (1u64 << i) - 1,
        _ => u64::MAX,
    }
}

/// One stripe: a full bucket array plus a sum cell, cache-line aligned
/// so concurrent writers on different stripes never share a line.
#[repr(align(64))]
struct Stripe {
    buckets: [AtomicU64; BUCKETS],
    sum: AtomicU64,
}

impl Stripe {
    fn new() -> Self {
        Stripe { buckets: std::array::from_fn(|_| AtomicU64::new(0)), sum: AtomicU64::new(0) }
    }
}

/// A striped, lock-free, log-bucketed histogram of `u64` observations.
pub struct Histogram {
    stripes: Box<[Stripe]>,
    max: AtomicU64,
}

impl Histogram {
    /// An empty histogram with [`STRIPES`] recording slabs.
    pub fn new() -> Self {
        Histogram { stripes: (0..STRIPES).map(|_| Stripe::new()).collect(), max: AtomicU64::new(0) }
    }

    /// Records one observation on the calling thread's stripe.
    #[inline]
    pub fn record(&self, v: u64) {
        let s = &self.stripes[stripe_id() % STRIPES];
        s.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        s.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Folds the stripes into a mergeable point-in-time snapshot. Exact
    /// once concurrent writers have quiesced; otherwise each bucket is
    /// individually consistent (monotone under concurrent recording).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut sum = 0u64;
        for s in self.stripes.iter() {
            for (b, cell) in buckets.iter_mut().zip(s.buckets.iter()) {
                *b += cell.load(Ordering::Relaxed);
            }
            sum += s.sum.load(Ordering::Relaxed);
        }
        let count = buckets.iter().sum();
        HistogramSnapshot { buckets, count, sum, max: self.max.load(Ordering::Relaxed) }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("sum", &s.sum)
            .field("max", &s.max)
            .finish()
    }
}

/// A plain-value view of a [`Histogram`]: per-bucket counts, total
/// count, sum of observations, and the exact maximum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Count per bucket (see [`bucket_index`] / [`bucket_upper_bound`]).
    pub buckets: [u64; BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        HistogramSnapshot { buckets: [0; BUCKETS], count: 0, sum: 0, max: 0 }
    }

    /// Adds another snapshot into this one (bucket-wise sum, max of
    /// maxes) — how per-query-kind histograms fold into engine totals.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }

    /// The quantile `q` in `[0, 1]`, computed exactly from the bucket
    /// counts: the upper bound of the bucket holding the `ceil(q·count)`-th
    /// smallest observation, clamped to the recorded maximum (so `p100`
    /// *is* the max and quantiles never exceed it). 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th percentile (bucket upper bound).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_log2_with_zero_bucket() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn every_value_falls_within_its_bucket_bounds() {
        for v in [0u64, 1, 2, 3, 7, 8, 1000, 123_456_789, 1 << 40, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_bound(i), "{v} above bucket {i} upper bound");
            if i > 0 {
                assert!(v > bucket_upper_bound(i - 1), "{v} not above bucket {} bound", i - 1);
            }
        }
    }

    #[test]
    fn upper_bounds_are_strictly_increasing() {
        for i in 1..BUCKETS {
            assert!(bucket_upper_bound(i) > bucket_upper_bound(i - 1), "bucket {i}");
        }
        assert_eq!(bucket_upper_bound(BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn count_sum_max_are_exact() {
        let h = Histogram::new();
        for v in [0u64, 5, 5, 100, 70_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 70_110);
        assert_eq!(s.max, 70_000);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[bucket_index(5)], 2);
    }

    #[test]
    fn quantiles_come_from_bucket_bounds_clamped_to_max() {
        let h = Histogram::new();
        // 99 fast observations and one slow one.
        for _ in 0..99 {
            h.record(1000);
        }
        h.record(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.p50(), bucket_upper_bound(bucket_index(1000)));
        assert_eq!(s.p95(), bucket_upper_bound(bucket_index(1000)));
        // The p99 rank is 99 — still in the fast bucket; p100 is the max.
        assert_eq!(s.p99(), bucket_upper_bound(bucket_index(1000)));
        assert_eq!(s.quantile(1.0), 1_000_000);
    }

    #[test]
    fn single_observation_quantiles_equal_the_observation_bucket() {
        let h = Histogram::new();
        h.record(12_345);
        let s = h.snapshot();
        // One sample: every quantile is that sample's bucket, clamped to
        // the exact max — i.e., exactly the observation.
        assert_eq!(s.p50(), 12_345);
        assert_eq!(s.p99(), 12_345);
    }

    #[test]
    fn empty_histogram_answers_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!((s.count, s.sum, s.max), (0, 0, 0));
        assert_eq!(s.p99(), 0);
    }

    #[test]
    fn merge_is_bucketwise_sum() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        a.record(1 << 20);
        b.record(10);
        b.record(u64::MAX);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 4);
        assert_eq!(m.max, u64::MAX);
        assert_eq!(m.buckets[bucket_index(10)], 2);
        assert_eq!(m.buckets[BUCKETS - 1], 1);
        // Merging empty is the identity.
        let before = m.clone();
        m.merge(&HistogramSnapshot::empty());
        assert_eq!(m, before);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let h = std::sync::Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1_000 + i % 97);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("recorder thread");
        }
        let s = h.snapshot();
        assert_eq!(s.count, 80_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 80_000);
    }
}
