//! Serving-tier metrics: a lock-free registry of counters, gauges, and
//! log-bucketed latency histograms.
//!
//! The engine's hot paths (admission, worker loops, the result cache,
//! the wire reader) record into this module with relaxed striped
//! atomics — no locks, no allocation, no shared cache line between
//! recording threads. Readers pull mergeable snapshots and derive
//! exact bucket quantiles; nothing on the read side ever blocks a
//! recorder. Two closed-vocabulary surfaces are built on top:
//!
//! * [`registry::MetricsRegistry`] — the live instruments, one field
//!   per metric, threaded through the scheduler by `Arc`.
//! * [`prometheus`] — hand-rolled Prometheus text exposition (format
//!   0.0.4) over a [`registry::MetricsSnapshot`], served by
//!   `ligra-serve --metrics-addr` and pinned family-by-family in the
//!   integration tests.
//!
//! Engine workers are plain `std::thread`s, not rayon workers, so the
//! rayon-indexed `ligra_parallel::StripedU64` would collapse onto one
//! stripe here. This module instead assigns each OS thread a stripe id
//! at first use ([`stripe_id`]) and stripes over a fixed power-of-two
//! slab count.

pub mod histogram;
pub mod prometheus;
pub mod registry;

pub use histogram::{
    bucket_index, bucket_upper_bound, Histogram, HistogramSnapshot, BUCKETS, MAX_FINITE_BUCKET,
};
pub use prometheus::{render, render_router, FAMILIES, ROUTE_FAMILIES};
pub use registry::{MetricsRegistry, MetricsSnapshot};

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Stripe count for counters and histograms. Power of two so stripe
/// selection is a mask; 8 covers the worker-pool sizes the engine runs
/// (workers + wire threads) without growing snapshots noticeably.
pub const STRIPES: usize = 8;

/// This thread's stripe id: a small dense integer handed out
/// round-robin the first time a thread records a metric. Stable for
/// the life of the thread, so a worker always hits the same stripe.
#[inline]
pub fn stripe_id() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    STRIPE.with(|s| *s)
}

/// One cache-line-aligned atomic cell, so adjacent stripes of a
/// [`Counter`] never share a line.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A striped, monotonically increasing counter. `add` touches only the
/// calling thread's stripe; `get` folds all stripes (monotone under
/// concurrent recording, exact at quiescence).
#[derive(Default)]
pub struct Counter {
    slots: [PaddedU64; STRIPES],
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `n` on the calling thread's stripe.
    #[inline]
    pub fn add(&self, n: u64) {
        self.slots[stripe_id() % STRIPES].0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds 1 on the calling thread's stripe.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The sum across stripes.
    pub fn get(&self) -> u64 {
        self.slots.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.get())
    }
}

/// A settable instantaneous value (queue depth, in-flight bytes).
/// Unlike [`Counter`] a gauge is a single cell: its writers already
/// serialize on the scheduler queue lock, so striping would only blur
/// the read. Saturates at zero on underflow rather than wrapping —
/// a transiently stale gauge beats a 2^64 spike on a scrape.
#[derive(Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value outright.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Lowers the value by `n`, clamping at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        // CAS loop (not fetch_sub) so concurrent overshoot can't wrap.
        let mut cur = self.0.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.0.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.get())
    }
}

/// SplitMix64 finalizer: a cheap, well-distributed `u64 → u64` mixer.
/// Used for generated trace ids and the serve client's retry jitter —
/// one shared definition so both derive from the same stream shape.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let c = std::sync::Arc::new(Counter::new());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("counter thread");
        }
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_tracks_and_saturates() {
        let g = Gauge::new();
        g.add(10);
        g.sub(3);
        assert_eq!(g.get(), 7);
        g.sub(100); // underflow clamps instead of wrapping
        assert_eq!(g.get(), 0);
        g.set(42);
        assert_eq!(g.get(), 42);
    }

    #[test]
    fn stripe_id_is_stable_per_thread() {
        let a = stripe_id();
        let b = stripe_id();
        assert_eq!(a, b);
        let other = std::thread::spawn(stripe_id).join().expect("stripe thread");
        assert_ne!(a, other, "distinct threads get distinct raw stripe ids");
    }

    #[test]
    fn mix64_spreads_nearby_inputs() {
        let a = mix64(1);
        let b = mix64(2);
        assert_ne!(a, b);
        assert_ne!(a >> 32, b >> 32, "high bits differ for adjacent inputs");
        assert_ne!(mix64(0), 0);
    }
}
