//! Hand-rolled Prometheus text exposition (format 0.0.4).
//!
//! No client library, no dependencies: the metric vocabulary is closed
//! ([`FAMILIES`]), every family is rendered unconditionally (zero
//! valued families still appear, so scrapers and the smoke test can
//! grep deterministically), and label values come from fixed in-repo
//! name tables (`Query::KIND_NAMES`, [`RETIRE_STATUSES`],
//! `FaultPoint` names) — none contain `"`, `\`, or newlines, so no
//! escaping pass is needed. Histograms print cumulative `_bucket`
//! lines for non-empty buckets plus the mandatory `le="+Inf"`, then
//! `_sum` and `_count`; bucket bounds are the integer upper bounds
//! from [`super::histogram::bucket_upper_bound`].

use super::histogram::{bucket_upper_bound, HistogramSnapshot, MAX_FINITE_BUCKET};
use super::registry::{MetricsSnapshot, RETIRE_STATUSES};
use std::fmt::Write;

/// The closed metric vocabulary: `(family name, type, label keys,
/// help)`, in exposition order. The pin test in the integration suite
/// asserts this table verbatim, and a unit test below asserts
/// [`render`] emits exactly these families in exactly this order.
pub const FAMILIES: &[(&str, &str, &[&str], &str)] = &[
    ("ligra_epoch", "gauge", &[], "Epoch of the installed graph snapshot (0 = none)"),
    ("ligra_workers", "gauge", &[], "Configured worker threads"),
    ("ligra_queue_capacity", "gauge", &[], "Configured admission queue capacity"),
    ("ligra_queue_depth", "gauge", &[], "Jobs waiting in the admission queue"),
    ("ligra_running_queries", "gauge", &[], "Jobs executing on workers"),
    ("ligra_inflight_bytes", "gauge", &[], "Estimated bytes of admitted unfinished work"),
    ("ligra_memory_budget_bytes", "gauge", &[], "Configured memory budget (0 = unlimited)"),
    ("ligra_cache_entries", "gauge", &[], "Resident result-cache entries"),
    ("ligra_queries_submitted_total", "counter", &[], "Queries accepted by the engine"),
    ("ligra_queries_rejected_total", "counter", &[], "Queries refused because the queue was full"),
    ("ligra_queries_retired_total", "counter", &["status"], "Terminal query outcomes by status"),
    ("ligra_overload_sheds_total", "counter", &[], "Queries shed at admission by memory budget"),
    ("ligra_dispatch_retries_total", "counter", &[], "Fault-injected dispatches re-enqueued"),
    ("ligra_worker_busy_ns_total", "counter", &[], "Nanoseconds workers spent executing jobs"),
    ("ligra_worker_idle_ns_total", "counter", &[], "Nanoseconds workers spent waiting for work"),
    ("ligra_cache_hits_total", "counter", &[], "Result-cache hits"),
    ("ligra_cache_misses_total", "counter", &[], "Result-cache misses"),
    ("ligra_cache_evictions_total", "counter", &[], "Result-cache LRU evictions"),
    ("ligra_partition_rounds_total", "counter", &[], "edgeMap rounds run scatter/gather"),
    ("ligra_partition_bins_flushed_total", "counter", &[], "Scatter bins drained by gather"),
    ("ligra_partition_scatter_bytes_total", "counter", &[], "Bytes scattered into partition bins"),
    ("ligra_mutation_overlay_edges", "gauge", &[], "Arcs in the serving snapshot's delta overlay"),
    ("ligra_mutation_overlay_vertices", "gauge", &[], "Vertices touched by the delta overlay"),
    ("ligra_mutation_batches_applied_total", "counter", &[], "Mutation batches applied"),
    ("ligra_mutation_edges_added_total", "counter", &[], "Arcs inserted by mutation batches"),
    ("ligra_mutation_edges_deleted_total", "counter", &[], "Arcs removed by mutation tombstones"),
    ("ligra_mutation_compactions_total", "counter", &[], "Background CSR compactions installed"),
    ("ligra_mutation_compaction_failures_total", "counter", &[], "Compactions failed or panicked"),
    ("ligra_mutation_compaction_ns", "histogram", &[], "Compaction wall clock, nanoseconds"),
    ("ligra_fault_injections_total", "counter", &["point"], "Faults fired by injection point"),
    ("ligra_wire_requests_total", "counter", &[], "Request lines received by the wire reader"),
    ("ligra_wire_bytes_total", "counter", &[], "Bytes read by the wire reader"),
    ("ligra_wire_malformed_total", "counter", &[], "Request lines rejected as malformed"),
    ("ligra_queue_wait_ns", "histogram", &["query"], "Queue wait per query kind, nanoseconds"),
    ("ligra_run_time_ns", "histogram", &["query"], "Run time per query kind, nanoseconds"),
];

fn head(out: &mut String, name: &str, typ: &str, help: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {typ}");
}

fn scalar(out: &mut String, name: &str, typ: &str, help: &str, v: u64) {
    head(out, name, typ, help);
    let _ = writeln!(out, "{name} {v}");
}

fn labeled(out: &mut String, name: &str, key: &str, rows: &[(&str, u64)]) {
    for (value, v) in rows {
        let _ = writeln!(out, "{name}{{{key}=\"{value}\"}} {v}");
    }
}

fn bare_histogram(out: &mut String, name: &str, h: &HistogramSnapshot) {
    let mut cum = 0u64;
    for (i, &c) in h.buckets.iter().enumerate() {
        if c == 0 || i > MAX_FINITE_BUCKET {
            continue;
        }
        cum += c;
        let le = bucket_upper_bound(i);
        let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cum}");
    }
    let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count);
    let _ = writeln!(out, "{name}_sum {}", h.sum);
    let _ = writeln!(out, "{name}_count {}", h.count);
}

fn histogram(out: &mut String, name: &str, key: &str, rows: &[(&str, HistogramSnapshot)]) {
    for (value, h) in rows {
        let mut cum = 0u64;
        for (i, &c) in h.buckets.iter().enumerate() {
            if c == 0 || i > MAX_FINITE_BUCKET {
                continue;
            }
            cum += c;
            let le = bucket_upper_bound(i);
            let _ = writeln!(out, "{name}_bucket{{{key}=\"{value}\",le=\"{le}\"}} {cum}");
        }
        let _ = writeln!(out, "{name}_bucket{{{key}=\"{value}\",le=\"+Inf\"}} {}", h.count);
        let _ = writeln!(out, "{name}_sum{{{key}=\"{value}\"}} {}", h.sum);
        let _ = writeln!(out, "{name}_count{{{key}=\"{value}\"}} {}", h.count);
    }
}

/// Renders a snapshot as Prometheus text exposition. Every family in
/// [`FAMILIES`] appears exactly once, in table order, with `# HELP`
/// and `# TYPE` headers; labeled families list every label value from
/// their closed tables even at zero.
pub fn render(s: &MetricsSnapshot) -> String {
    let mut out = String::with_capacity(4096);
    scalar(
        &mut out,
        "ligra_epoch",
        "gauge",
        "Epoch of the installed graph snapshot (0 = none)",
        s.epoch,
    );
    scalar(&mut out, "ligra_workers", "gauge", "Configured worker threads", s.workers);
    scalar(
        &mut out,
        "ligra_queue_capacity",
        "gauge",
        "Configured admission queue capacity",
        s.queue_capacity,
    );
    scalar(
        &mut out,
        "ligra_queue_depth",
        "gauge",
        "Jobs waiting in the admission queue",
        s.queue_depth,
    );
    scalar(&mut out, "ligra_running_queries", "gauge", "Jobs executing on workers", s.running);
    scalar(
        &mut out,
        "ligra_inflight_bytes",
        "gauge",
        "Estimated bytes of admitted unfinished work",
        s.inflight_bytes,
    );
    scalar(
        &mut out,
        "ligra_memory_budget_bytes",
        "gauge",
        "Configured memory budget (0 = unlimited)",
        s.memory_budget_bytes,
    );
    scalar(
        &mut out,
        "ligra_cache_entries",
        "gauge",
        "Resident result-cache entries",
        s.cache_entries,
    );
    scalar(
        &mut out,
        "ligra_queries_submitted_total",
        "counter",
        "Queries accepted by the engine",
        s.submitted,
    );
    scalar(
        &mut out,
        "ligra_queries_rejected_total",
        "counter",
        "Queries refused because the queue was full",
        s.rejected,
    );

    head(&mut out, "ligra_queries_retired_total", "counter", "Terminal query outcomes by status");
    let retired: Vec<(&str, u64)> =
        RETIRE_STATUSES.iter().zip(s.retired.iter()).map(|(&n, &v)| (n, v)).collect();
    labeled(&mut out, "ligra_queries_retired_total", "status", &retired);

    scalar(
        &mut out,
        "ligra_overload_sheds_total",
        "counter",
        "Queries shed at admission by memory budget",
        s.overload_sheds,
    );
    scalar(
        &mut out,
        "ligra_dispatch_retries_total",
        "counter",
        "Fault-injected dispatches re-enqueued",
        s.retries,
    );
    scalar(
        &mut out,
        "ligra_worker_busy_ns_total",
        "counter",
        "Nanoseconds workers spent executing jobs",
        s.worker_busy_ns,
    );
    scalar(
        &mut out,
        "ligra_worker_idle_ns_total",
        "counter",
        "Nanoseconds workers spent waiting for work",
        s.worker_idle_ns,
    );
    scalar(&mut out, "ligra_cache_hits_total", "counter", "Result-cache hits", s.cache_hits);
    scalar(&mut out, "ligra_cache_misses_total", "counter", "Result-cache misses", s.cache_misses);
    scalar(
        &mut out,
        "ligra_cache_evictions_total",
        "counter",
        "Result-cache LRU evictions",
        s.cache_evictions,
    );
    scalar(
        &mut out,
        "ligra_partition_rounds_total",
        "counter",
        "edgeMap rounds run scatter/gather",
        s.partition_rounds,
    );
    scalar(
        &mut out,
        "ligra_partition_bins_flushed_total",
        "counter",
        "Scatter bins drained by gather",
        s.partition_bins_flushed,
    );
    scalar(
        &mut out,
        "ligra_partition_scatter_bytes_total",
        "counter",
        "Bytes scattered into partition bins",
        s.partition_scatter_bytes,
    );

    scalar(
        &mut out,
        "ligra_mutation_overlay_edges",
        "gauge",
        "Arcs in the serving snapshot's delta overlay",
        s.mutation_overlay_edges,
    );
    scalar(
        &mut out,
        "ligra_mutation_overlay_vertices",
        "gauge",
        "Vertices touched by the delta overlay",
        s.mutation_overlay_vertices,
    );
    scalar(
        &mut out,
        "ligra_mutation_batches_applied_total",
        "counter",
        "Mutation batches applied",
        s.mutation_batches,
    );
    scalar(
        &mut out,
        "ligra_mutation_edges_added_total",
        "counter",
        "Arcs inserted by mutation batches",
        s.mutation_edges_added,
    );
    scalar(
        &mut out,
        "ligra_mutation_edges_deleted_total",
        "counter",
        "Arcs removed by mutation tombstones",
        s.mutation_edges_deleted,
    );
    scalar(
        &mut out,
        "ligra_mutation_compactions_total",
        "counter",
        "Background CSR compactions installed",
        s.mutation_compactions,
    );
    scalar(
        &mut out,
        "ligra_mutation_compaction_failures_total",
        "counter",
        "Compactions failed or panicked",
        s.mutation_compaction_failures,
    );
    head(
        &mut out,
        "ligra_mutation_compaction_ns",
        "histogram",
        "Compaction wall clock, nanoseconds",
    );
    bare_histogram(&mut out, "ligra_mutation_compaction_ns", &s.mutation_compact_time);

    head(&mut out, "ligra_fault_injections_total", "counter", "Faults fired by injection point");
    labeled(&mut out, "ligra_fault_injections_total", "point", &s.fault_injections);

    scalar(
        &mut out,
        "ligra_wire_requests_total",
        "counter",
        "Request lines received by the wire reader",
        s.wire_requests,
    );
    scalar(
        &mut out,
        "ligra_wire_bytes_total",
        "counter",
        "Bytes read by the wire reader",
        s.wire_bytes,
    );
    scalar(
        &mut out,
        "ligra_wire_malformed_total",
        "counter",
        "Request lines rejected as malformed",
        s.wire_malformed,
    );

    head(&mut out, "ligra_queue_wait_ns", "histogram", "Queue wait per query kind, nanoseconds");
    histogram(&mut out, "ligra_queue_wait_ns", "query", &s.queue_wait);
    head(&mut out, "ligra_run_time_ns", "histogram", "Run time per query kind, nanoseconds");
    histogram(&mut out, "ligra_run_time_ns", "query", &s.run_time);
    out
}

/// The router's closed metric vocabulary (`ligra-route
/// --metrics-addr`), same shape and rules as [`FAMILIES`]; the
/// `backend` label is the replica's zero-based index in `--backend`
/// order. Pinned by the same integration suite.
pub const ROUTE_FAMILIES: &[(&str, &str, &[&str], &str)] = &[
    ("ligra_route_backends", "gauge", &[], "Configured backend replicas"),
    (
        "ligra_route_backend_state",
        "gauge",
        &["backend"],
        "Replica state: 0 = down, 1 = degraded, 2 = healthy",
    ),
    (
        "ligra_route_backend_outstanding",
        "gauge",
        &["backend"],
        "Requests currently in flight to the replica",
    ),
    ("ligra_route_requests_total", "counter", &[], "Client request lines the router parsed"),
    (
        "ligra_route_forwarded_total",
        "counter",
        &["backend"],
        "Requests successfully exchanged with the replica",
    ),
    (
        "ligra_route_backend_errors_total",
        "counter",
        &["backend"],
        "Forward failures: connect errors, timeouts, torn responses",
    ),
    (
        "ligra_route_retries_total",
        "counter",
        &[],
        "Transient backend responses retried on another replica",
    ),
    (
        "ligra_route_failovers_total",
        "counter",
        &[],
        "Reads rerouted after a replica died mid-request",
    ),
    ("ligra_route_sheds_total", "counter", &[], "Requests shed with every replica unavailable"),
    ("ligra_route_probes_total", "counter", &[], "Health probes attempted"),
    ("ligra_route_probe_failures_total", "counter", &[], "Health probes failed"),
    ("ligra_route_journal_entries", "gauge", &[], "Entries resident in the write journal"),
    (
        "ligra_route_journal_replayed_total",
        "counter",
        &[],
        "Journal entries replayed to lagging replicas",
    ),
    (
        "ligra_route_wire_malformed_total",
        "counter",
        &[],
        "Client request lines rejected as malformed",
    ),
    (
        "ligra_route_request_ns",
        "histogram",
        &["backend"],
        "Forwarded request round-trip per replica, nanoseconds",
    ),
];

/// Renders the router's metrics as Prometheus text exposition: every
/// family in [`ROUTE_FAMILIES`] exactly once, in table order, with one
/// labeled row per configured replica.
pub fn render_router(m: &crate::route::RouterMetrics) -> String {
    let ids: Vec<String> = (0..m.backends.len()).map(|i| i.to_string()).collect();
    let per_backend = |f: &dyn Fn(&crate::route::BackendMetrics) -> u64| -> Vec<(&str, u64)> {
        ids.iter().zip(m.backends.iter()).map(|(id, b)| (id.as_str(), f(b))).collect()
    };
    let mut out = String::with_capacity(2048);
    scalar(
        &mut out,
        "ligra_route_backends",
        "gauge",
        "Configured backend replicas",
        m.backends.len() as u64,
    );
    head(
        &mut out,
        "ligra_route_backend_state",
        "gauge",
        "Replica state: 0 = down, 1 = degraded, 2 = healthy",
    );
    labeled(&mut out, "ligra_route_backend_state", "backend", &per_backend(&|b| b.state.get()));
    head(
        &mut out,
        "ligra_route_backend_outstanding",
        "gauge",
        "Requests currently in flight to the replica",
    );
    labeled(
        &mut out,
        "ligra_route_backend_outstanding",
        "backend",
        &per_backend(&|b| b.outstanding.get()),
    );
    scalar(
        &mut out,
        "ligra_route_requests_total",
        "counter",
        "Client request lines the router parsed",
        m.requests.get(),
    );
    head(
        &mut out,
        "ligra_route_forwarded_total",
        "counter",
        "Requests successfully exchanged with the replica",
    );
    labeled(
        &mut out,
        "ligra_route_forwarded_total",
        "backend",
        &per_backend(&|b| b.forwarded.get()),
    );
    head(
        &mut out,
        "ligra_route_backend_errors_total",
        "counter",
        "Forward failures: connect errors, timeouts, torn responses",
    );
    labeled(
        &mut out,
        "ligra_route_backend_errors_total",
        "backend",
        &per_backend(&|b| b.errors.get()),
    );
    scalar(
        &mut out,
        "ligra_route_retries_total",
        "counter",
        "Transient backend responses retried on another replica",
        m.retries.get(),
    );
    scalar(
        &mut out,
        "ligra_route_failovers_total",
        "counter",
        "Reads rerouted after a replica died mid-request",
        m.failovers.get(),
    );
    scalar(
        &mut out,
        "ligra_route_sheds_total",
        "counter",
        "Requests shed with every replica unavailable",
        m.sheds.get(),
    );
    scalar(
        &mut out,
        "ligra_route_probes_total",
        "counter",
        "Health probes attempted",
        m.probes.get(),
    );
    scalar(
        &mut out,
        "ligra_route_probe_failures_total",
        "counter",
        "Health probes failed",
        m.probe_failures.get(),
    );
    scalar(
        &mut out,
        "ligra_route_journal_entries",
        "gauge",
        "Entries resident in the write journal",
        m.journal_entries.get(),
    );
    scalar(
        &mut out,
        "ligra_route_journal_replayed_total",
        "counter",
        "Journal entries replayed to lagging replicas",
        m.journal_replayed.get(),
    );
    scalar(
        &mut out,
        "ligra_route_wire_malformed_total",
        "counter",
        "Client request lines rejected as malformed",
        m.wire_malformed.get(),
    );
    head(
        &mut out,
        "ligra_route_request_ns",
        "histogram",
        "Forwarded request round-trip per replica, nanoseconds",
    );
    let rows: Vec<(&str, HistogramSnapshot)> = ids
        .iter()
        .zip(m.backends.iter())
        .map(|(id, b)| (id.as_str(), b.request_ns.snapshot()))
        .collect();
    histogram(&mut out, "ligra_route_request_ns", "backend", &rows);
    out
}

#[cfg(test)]
mod tests {
    use super::super::histogram::bucket_index;
    use super::*;
    use crate::query::Query;

    fn sample() -> MetricsSnapshot {
        let mut h = HistogramSnapshot::empty();
        h.buckets[bucket_index(1000)] = 3;
        h.buckets[bucket_index(1 << 20)] = 1;
        h.count = 4;
        h.sum = 3 * 1000 + (1 << 20);
        h.max = 1 << 20;
        MetricsSnapshot {
            epoch: 2,
            workers: 4,
            queue_capacity: 64,
            queue_depth: 1,
            running: 2,
            inflight_bytes: 12_345,
            memory_budget_bytes: 0,
            submitted: 10,
            rejected: 1,
            overload_sheds: 2,
            retired: [5, 1, 1, 1, 1],
            retries: 3,
            worker_busy_ns: 9_999,
            worker_idle_ns: 1_111,
            cache_hits: 4,
            cache_misses: 6,
            cache_evictions: 1,
            cache_entries: 5,
            partition_rounds: 2,
            partition_bins_flushed: 16,
            partition_scatter_bytes: 4_096,
            mutation_batches: 3,
            mutation_edges_added: 12,
            mutation_edges_deleted: 4,
            mutation_overlay_edges: 20,
            mutation_overlay_vertices: 7,
            mutation_compactions: 1,
            mutation_compaction_failures: 0,
            mutation_compact_time: h.clone(),
            fault_injections: vec![("graph.load", 0), ("edgemap.round", 7)],
            queue_wait: Query::KIND_NAMES
                .iter()
                .map(|&k| (k, HistogramSnapshot::empty()))
                .collect(),
            run_time: Query::KIND_NAMES
                .iter()
                .map(|&k| if k == "bfs" { (k, h.clone()) } else { (k, HistogramSnapshot::empty()) })
                .collect(),
            wire_requests: 20,
            wire_bytes: 2_048,
            wire_malformed: 1,
        }
    }

    /// `render` and `FAMILIES` are maintained side by side; this pins
    /// them to each other so neither can drift alone.
    #[test]
    fn rendered_type_lines_match_families_in_order() {
        let text = render(&sample());
        let types: Vec<(&str, &str)> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .filter_map(|l| l.split_once(' '))
            .collect();
        let expected: Vec<(&str, &str)> = FAMILIES.iter().map(|&(n, t, _, _)| (n, t)).collect();
        assert_eq!(types, expected);
    }

    #[test]
    fn labeled_families_emit_every_closed_label_value() {
        let text = render(&sample());
        for st in RETIRE_STATUSES {
            assert!(
                text.contains(&format!("ligra_queries_retired_total{{status=\"{st}\"}} ")),
                "missing status {st}"
            );
        }
        for kind in Query::KIND_NAMES {
            assert!(
                text.contains(&format!("ligra_run_time_ns_count{{query=\"{kind}\"}} ")),
                "missing kind {kind}"
            );
        }
        assert!(text.contains("ligra_fault_injections_total{point=\"graph.load\"} 0"));
        assert!(text.contains("ligra_fault_injections_total{point=\"edgemap.round\"} 7"));
    }

    #[test]
    fn histogram_lines_are_cumulative_and_end_at_inf() {
        let text = render(&sample());
        let b1000 = bucket_upper_bound(bucket_index(1000));
        let b1m = bucket_upper_bound(bucket_index(1 << 20));
        assert!(
            text.contains(&format!("ligra_run_time_ns_bucket{{query=\"bfs\",le=\"{b1000}\"}} 3"))
        );
        assert!(text.contains(&format!("ligra_run_time_ns_bucket{{query=\"bfs\",le=\"{b1m}\"}} 4")));
        assert!(text.contains("ligra_run_time_ns_bucket{query=\"bfs\",le=\"+Inf\"} 4"));
        assert!(text
            .contains(&format!("ligra_run_time_ns_sum{{query=\"bfs\"}} {}", 3 * 1000 + (1 << 20))));
        assert!(text.contains("ligra_run_time_ns_count{query=\"bfs\"} 4"));
        // Empty histograms still close with +Inf, sum, count.
        assert!(text.contains("ligra_run_time_ns_bucket{query=\"mis\",le=\"+Inf\"} 0"));
        assert!(text.contains("ligra_run_time_ns_sum{query=\"mis\"} 0"));
        // The label-free compaction histogram closes the same way.
        assert!(text.contains("ligra_mutation_compaction_ns_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("ligra_mutation_compaction_ns_count 4"));
    }

    /// Same drift pin for the router vocabulary: `render_router` and
    /// `ROUTE_FAMILIES` must agree exactly, in order.
    #[test]
    fn router_type_lines_match_route_families_in_order() {
        let m = crate::route::RouterMetrics::with_backends(3);
        m.backends[0].state.set(2);
        m.backends[1].request_ns.record(1_000);
        m.failovers.incr();
        let text = render_router(&m);
        let types: Vec<(&str, &str)> = text
            .lines()
            .filter_map(|l| l.strip_prefix("# TYPE "))
            .filter_map(|l| l.split_once(' '))
            .collect();
        let expected: Vec<(&str, &str)> =
            ROUTE_FAMILIES.iter().map(|&(n, t, _, _)| (n, t)).collect();
        assert_eq!(types, expected);
    }

    #[test]
    fn router_families_emit_every_backend_row() {
        let m = crate::route::RouterMetrics::with_backends(3);
        m.backends[2].forwarded.add(5);
        let text = render_router(&m);
        for id in 0..3 {
            assert!(
                text.contains(&format!("ligra_route_backend_state{{backend=\"{id}\"}} ")),
                "missing state row for backend {id}"
            );
            assert!(
                text.contains(&format!(
                    "ligra_route_request_ns_bucket{{backend=\"{id}\",le=\"+Inf\"}} "
                )),
                "missing histogram close for backend {id}"
            );
        }
        assert!(text.contains("ligra_route_forwarded_total{backend=\"2\"} 5"));
        assert!(text.contains("ligra_route_failovers_total 0"));
    }

    #[test]
    fn every_line_is_comment_or_sample() {
        for line in render(&sample()).lines() {
            assert!(
                line.starts_with('#')
                    || line
                        .split_once(' ')
                        .is_some_and(|(name, v)| !name.is_empty() && v.parse::<u64>().is_ok()),
                "bad exposition line: {line}"
            );
        }
    }
}
