//! The write side of the serving engine: batched live-graph mutation.
//!
//! A [`MutationLog`] accepts [`DeltaBatch`]es off the query path. Each
//! applied batch layers a delta overlay over the *current* snapshot's CSR
//! (shared base arrays, per-vertex merged lists — see
//! `ligra_graph::delta`) and publishes the result as the next epoch
//! through the engine's `GraphStore`. In-flight queries keep the snapshot
//! they were submitted against; the `(epoch, query)` result cache
//! invalidates naturally because a new epoch is a new key.
//!
//! Overlays stack: every batch re-merges the touched vertices' lists, so
//! reads stay contiguous-slice fast, but the side CSR grows with write
//! volume. Once it crosses [`MutationConfig::compact_threshold`] arcs, a
//! background **compactor** flattens the current view into a clean CSR
//! (plus its cached `Partitioning`) *off the write lock*, then re-applies
//! whatever batches landed while it ran and installs the result as the
//! next epoch. A compaction that fails or panics never touches the store:
//! the overlaid view keeps serving and the failure is counted.
//!
//! Epoch lineage: the log tracks the epoch it last installed. If the
//! store moves under it (an operator `load`/`gen` replacing the graph),
//! the next apply re-bases onto the new snapshot and drops its pending
//! batches — and an in-flight compaction of the dead lineage abandons its
//! result instead of installing it.

use crate::error::{classify_panic, QueryError};
use crate::scheduler::{lock, Engine};
#[cfg(feature = "fault-inject")]
use ligra::FaultPoint;
use ligra_graph::delta::{self, DeltaBatch, NormalizedBatch};
use ligra_graph::{Graph, VertexId};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Mutation-log tunables.
#[derive(Debug, Clone)]
pub struct MutationConfig {
    /// Overlay side-CSR size (arcs, both directions) above which an apply
    /// triggers a background compaction. `None` disables auto-compaction
    /// (explicit [`MutationLog::compact`] still works).
    pub compact_threshold: Option<u64>,
}

impl Default for MutationConfig {
    fn default() -> Self {
        MutationConfig { compact_threshold: Some(1 << 16) }
    }
}

/// Why a mutation or compaction did not go through. The store is left
/// exactly as it was in every case.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutateError {
    /// No graph is installed to mutate.
    NoGraph,
    /// The batch was invalid (out-of-range vertex). Fix the request.
    Invalid(String),
    /// Admission control shed the batch under memory pressure. Retry
    /// after the hint.
    Overloaded {
        /// Suggested client backoff.
        retry_after: Duration,
    },
    /// A fault-injection schedule fired a transient error. Retryable.
    Injected {
        /// Fault-point name (`mutate.apply` / `mutate.compact`).
        point: &'static str,
        /// 1-based hit count at which the schedule fired.
        hit: u64,
    },
    /// The apply or compaction panicked; the unwind was contained and
    /// the store is unpoisoned.
    Panicked {
        /// Where the panic originated.
        point: &'static str,
        /// Best-effort panic message.
        msg: String,
    },
    /// A compaction is already running.
    Busy,
    /// The graph was replaced (operator `load`/`gen`) while compacting;
    /// the compaction result belonged to a dead lineage and was dropped.
    Superseded,
}

impl MutateError {
    /// Whether a client retry is a reasonable response.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            MutateError::Overloaded { .. }
                | MutateError::Injected { .. }
                | MutateError::Busy
                | MutateError::Superseded
        )
    }
}

impl std::fmt::Display for MutateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MutateError::NoGraph => f.write_str("no graph installed"),
            MutateError::Invalid(msg) => write!(f, "invalid mutation: {msg}"),
            MutateError::Overloaded { retry_after } => {
                write!(f, "mutation shed under memory pressure; retry after {retry_after:?}")
            }
            MutateError::Injected { point, hit } => {
                write!(f, "fault-inject: injected fault at {point} (hit {hit})")
            }
            MutateError::Panicked { point, msg } => {
                write!(f, "mutation panicked at {point}: {msg}")
            }
            MutateError::Busy => f.write_str("a compaction is already running"),
            MutateError::Superseded => {
                f.write_str("graph replaced during compaction; result dropped")
            }
        }
    }
}

impl std::error::Error for MutateError {}

/// What one applied batch did.
#[derive(Debug, Clone, Copy)]
pub struct MutationReport {
    /// The epoch the new snapshot was published at.
    pub epoch: u64,
    /// Arcs actually inserted (set-semantics no-ops excluded).
    pub arcs_added: u64,
    /// Arc copies removed by tombstones.
    pub arcs_deleted: u64,
    /// Fresh vertex ids appended.
    pub vertices_added: u64,
    /// Vertices whose incident edges were tombstoned.
    pub vertices_deleted: u64,
    /// Arcs in the new snapshot's overlay (both directions).
    pub overlay_arcs: u64,
    /// Vertices touched by the new snapshot's out-overlay.
    pub overlay_vertices: u64,
    /// Whether this apply kicked off a background compaction.
    pub compaction_started: bool,
}

/// What one successful compaction did.
#[derive(Debug, Clone, Copy)]
pub struct CompactionReport {
    /// The epoch the clean snapshot was published at.
    pub epoch: u64,
    /// Wall-clock time materializing (and re-applying) took.
    pub duration: Duration,
    /// Arcs in the compacted snapshot.
    pub edges: u64,
    /// Batches that landed mid-compaction and were rolled forward.
    pub reapplied_batches: usize,
}

/// A point-in-time view of the log, for the `graph-stats` wire op.
#[derive(Debug, Clone, Copy)]
pub struct MutationStatus {
    /// Epoch of the last snapshot this log installed (or re-based onto).
    pub derived_epoch: u64,
    /// Applied batches not yet baked into a clean CSR.
    pub pending_batches: usize,
    /// Whether a background compaction is running right now.
    pub compacting: bool,
}

struct MutState {
    /// Batches applied since the last clean CSR, oldest first. The
    /// current view equals that CSR with these replayed in order.
    pending: Vec<NormalizedBatch>,
    /// Whether a compaction holds the (single) compactor slot.
    compacting: bool,
    /// Epoch of the last snapshot this log installed.
    derived_epoch: u64,
    /// Bumped whenever the log re-bases onto an externally installed
    /// graph; an in-flight compaction from an older generation abandons
    /// its result.
    generation: u64,
}

/// The engine's write path: applies delta batches, publishes epochs, and
/// runs background compaction. One per engine; shared by `Arc` between
/// the wire front-end and the compactor thread.
pub struct MutationLog {
    engine: Arc<Engine>,
    state: Mutex<MutState>,
    compact_threshold: Option<u64>,
}

impl MutationLog {
    /// A log writing through `engine`'s graph store.
    pub fn new(engine: Arc<Engine>, config: MutationConfig) -> Self {
        MutationLog {
            engine,
            state: Mutex::new(MutState {
                pending: Vec::new(),
                compacting: false,
                derived_epoch: 0,
                generation: 0,
            }),
            compact_threshold: config.compact_threshold,
        }
    }

    /// The configured auto-compaction threshold, if any.
    pub fn compact_threshold(&self) -> Option<u64> {
        self.compact_threshold
    }

    /// Current log status.
    pub fn status(&self) -> MutationStatus {
        let st = lock(&self.state, "mutation.state");
        MutationStatus {
            derived_epoch: st.derived_epoch,
            pending_batches: st.pending.len(),
            compacting: st.compacting,
        }
    }

    /// Applies one batch: layers it over the current snapshot and
    /// publishes the result as the next epoch. Serialized with other
    /// applies and with compaction installs; queries are never blocked
    /// (they read the store's `RwLock` only for an `Arc` clone).
    pub fn apply(self: &Arc<Self>, batch: &DeltaBatch) -> Result<MutationReport, MutateError> {
        let mut st = lock(&self.state, "mutation.state");
        let snap = self.engine.current_snapshot().ok_or(MutateError::NoGraph)?;
        if snap.epoch() != st.derived_epoch {
            // The store moved under us (operator load/gen): re-base.
            st.pending.clear();
            st.derived_epoch = snap.epoch();
            st.generation += 1;
        }
        let graph = Arc::clone(snap.graph());

        // Admission: the overlay the apply would build is charged against
        // the same memory budget queries use. The estimate is coarse
        // (degree mass of the touched endpoints); an otherwise idle
        // engine always admits, mirroring query admission.
        if let Some(budget) = self.engine.memory_budget() {
            let in_use = self.engine.metrics().inflight_bytes.get();
            let est = estimated_apply_bytes(&graph, batch);
            if in_use > 0 && in_use.saturating_add(est) > budget {
                return Err(MutateError::Overloaded {
                    retry_after: self.engine.retry_after_hint(),
                });
            }
        }

        // The dispatch under `state` is the write-serialization contract
        // itself — applies must be ordered, queries never take this lock
        // (snapshot reads only clone an Arc under `store.current`), and the
        // unwind boundary exists so a panicking batch leaves the guard
        // unpoisoned rather than wedging the log. Off-lock apply is what
        // `compact()` does for the rebuild; the delta overlay here is O(batch).
        // lint: allow(L8): unwind isolation for the serialized apply, see above
        let applied = catch_unwind(AssertUnwindSafe(|| -> Result<_, MutateError> {
            #[cfg(feature = "fault-inject")]
            if let Some(plan) = self.engine.fault_plan() {
                plan.check(FaultPoint::MutateApply)
                    .map_err(|e| MutateError::Injected { point: e.point.name(), hit: e.hit })?;
            }
            delta::apply_batch(&graph, batch).map_err(|e| MutateError::Invalid(e.to_string()))
        }));
        let (g2, nb, stats) = match applied {
            Err(payload) => return Err(from_panic(payload.as_ref())),
            Ok(Err(e)) => return Err(e),
            Ok(Ok(v)) => v,
        };

        let g2 = Arc::new(g2);
        let overlay_arcs = g2.overlay_arcs();
        let overlay_vertices = g2.overlay_vertices();
        let epoch = self.engine.install_graph(Arc::clone(&g2));
        st.derived_epoch = epoch;
        st.pending.push(nb);

        let m = self.engine.metrics();
        m.mutation_batches.incr();
        m.mutation_edges_added.add(stats.arcs_added);
        m.mutation_edges_deleted.add(stats.arcs_deleted);
        m.mutation_overlay_edges.set(overlay_arcs);
        m.mutation_overlay_vertices.set(overlay_vertices);

        let mut compaction_started = false;
        if let Some(threshold) = self.compact_threshold {
            if overlay_arcs > threshold && !st.compacting {
                drop(st);
                compaction_started = self.compact_async();
            }
        }
        Ok(MutationReport {
            epoch,
            arcs_added: stats.arcs_added,
            arcs_deleted: stats.arcs_deleted,
            vertices_added: stats.vertices_added,
            vertices_deleted: stats.vertices_deleted,
            overlay_arcs,
            overlay_vertices,
            compaction_started,
        })
    }

    /// Runs one compaction synchronously: flattens the current view into
    /// a clean CSR off the write lock, rolls forward batches that landed
    /// meanwhile, and publishes the result as the next epoch. Fails
    /// without touching the store ([`MutateError::Busy`] if one is
    /// already running).
    pub fn compact(&self) -> Result<CompactionReport, MutateError> {
        // Claim the compactor slot and capture the lineage.
        let (graph, baked, generation) = {
            let mut st = lock(&self.state, "mutation.state");
            if st.compacting {
                return Err(MutateError::Busy);
            }
            let snap = self.engine.current_snapshot().ok_or(MutateError::NoGraph)?;
            if snap.epoch() != st.derived_epoch {
                st.pending.clear();
                st.derived_epoch = snap.epoch();
                st.generation += 1;
            }
            st.compacting = true;
            (Arc::clone(snap.graph()), st.pending.len(), st.generation)
        };

        let started = Instant::now();
        // Materialize off-lock: applies keep landing while this runs.
        let result = catch_unwind(AssertUnwindSafe(|| -> Result<Arc<Graph>, MutateError> {
            #[cfg(feature = "fault-inject")]
            if let Some(plan) = self.engine.fault_plan() {
                plan.check(FaultPoint::MutateCompact)
                    .map_err(|e| MutateError::Injected { point: e.point.name(), hit: e.hit })?;
            }
            let clean = Arc::new(graph.compacted());
            // Rebuild the cached partitioning here, off the serving path,
            // so the first partitioned query on the clean epoch is warm.
            let _ = clean.partitioning();
            Ok(clean)
        }));

        let m = self.engine.metrics();
        let mut st = lock(&self.state, "mutation.state");
        st.compacting = false;
        let clean = match result {
            Err(payload) => {
                m.mutation_compaction_failures.incr();
                return Err(from_panic(payload.as_ref()));
            }
            Ok(Err(e)) => {
                m.mutation_compaction_failures.incr();
                return Err(e);
            }
            Ok(Ok(clean)) => clean,
        };
        if st.generation != generation || self.engine.current_epoch() != Some(st.derived_epoch) {
            // The lineage we compacted is dead (operator install while we
            // ran). Drop the result; not a failure of the store.
            return Err(MutateError::Superseded);
        }

        // The first `baked` pending batches are inside `clean`; replay
        // the ones that landed mid-compaction.
        let baked = baked.min(st.pending.len());
        st.pending.drain(..baked);
        let mut final_graph = (*clean).clone();
        let mut reapplied = 0usize;
        for nb in &st.pending {
            final_graph = delta::apply_normalized(&final_graph, nb).0;
            reapplied += 1;
        }
        let final_arc = if reapplied == 0 { clean } else { Arc::new(final_graph) };
        let overlay_arcs = final_arc.overlay_arcs();
        let overlay_vertices = final_arc.overlay_vertices();
        let edges = final_arc.num_edges() as u64;
        let epoch = self.engine.install_graph(final_arc);
        st.derived_epoch = epoch;
        drop(st);

        let duration = started.elapsed();
        m.mutation_compactions.incr();
        m.observe_compaction(duration.as_nanos().min(u64::MAX as u128) as u64);
        m.mutation_overlay_edges.set(overlay_arcs);
        m.mutation_overlay_vertices.set(overlay_vertices);
        Ok(CompactionReport { epoch, duration, edges, reapplied_batches: reapplied })
    }

    /// Kicks off [`MutationLog::compact`] on a background thread.
    /// Returns whether a compactor thread was actually spawned (false
    /// when one already appears to be running). The thread's outcome is
    /// visible through the mutation metrics.
    pub fn compact_async(self: &Arc<Self>) -> bool {
        if lock(&self.state, "mutation.state").compacting {
            return false;
        }
        let log = Arc::clone(self);
        std::thread::Builder::new()
            .name("ligra-compactor".into())
            .spawn(move || {
                // Busy/Superseded are benign races; real failures are
                // already counted in mutation_compaction_failures.
                let _ = log.compact();
            })
            .is_ok()
    }
}

/// Maps a contained unwind payload onto the mutation error vocabulary.
fn from_panic(payload: &(dyn std::any::Any + Send)) -> MutateError {
    match classify_panic(payload) {
        QueryError::Injected { point, hit } => MutateError::Injected { point, hit },
        QueryError::Panicked { point, msg } => MutateError::Panicked { point, msg },
        QueryError::App(msg) => MutateError::Invalid(msg),
    }
}

/// Coarse upper estimate of the overlay bytes an apply would add: the
/// merged lists of every touched endpoint, per stored direction, at 4
/// bytes an arc, plus side-CSR bookkeeping. Deliberately cheap — O(batch)
/// degree lookups, no edge walking.
fn estimated_apply_bytes(g: &Graph, batch: &DeltaBatch) -> u64 {
    let n = g.num_vertices();
    let dirs: u64 = if g.is_symmetric() { 1 } else { 2 };
    let deg = |v: VertexId| if (v as usize) < n { g.out_degree(v) as u64 } else { 0 };
    let mut touched_mass = 0u64;
    for &(u, v) in batch.add_edges.iter().chain(&batch.del_edges) {
        touched_mass += deg(u) + deg(v);
    }
    for &v in &batch.del_vertices {
        touched_mass += 2 * deg(v);
    }
    let new_arcs = 2 * batch.add_edges.len() as u64;
    (g.overlay_arcs() + (touched_mass + new_arcs) * dirs) * 4 + (n as u64) / 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::EngineConfig;
    use ligra_graph::generators::grid3d;

    fn engine() -> Arc<Engine> {
        let engine = Arc::new(Engine::new(EngineConfig { workers: 2, ..EngineConfig::default() }));
        engine.install_graph(Arc::new(grid3d(4))); // 64 vertices
        engine
    }

    #[test]
    fn apply_publishes_a_new_epoch_and_stacks_pending() {
        let engine = engine();
        let e0 = engine.current_epoch().expect("installed");
        let log = Arc::new(MutationLog::new(Arc::clone(&engine), MutationConfig::default()));
        let r = log.apply(&DeltaBatch::new().grow(1).add_edge(64, 0)).expect("apply");
        assert!(r.epoch > e0);
        assert_eq!(engine.current_epoch(), Some(r.epoch));
        assert_eq!(r.vertices_added, 1);
        assert_eq!(r.arcs_added, 2);
        assert_eq!(log.status().pending_batches, 1);
        assert_eq!(log.status().derived_epoch, r.epoch);
        let g = engine.current_snapshot().expect("snapshot");
        assert_eq!(g.num_vertices(), 65);
        assert!(g.graph().has_overlay());
        assert_eq!(engine.metrics().mutation_batches.get(), 1);
        assert_eq!(engine.metrics().mutation_overlay_edges.get(), r.overlay_arcs);
    }

    #[test]
    fn invalid_batch_leaves_the_store_untouched() {
        let engine = engine();
        let log = Arc::new(MutationLog::new(Arc::clone(&engine), MutationConfig::default()));
        let e0 = engine.current_epoch();
        let err = log.apply(&DeltaBatch::new().add_edge(0, 999)).expect_err("out of range");
        assert!(matches!(err, MutateError::Invalid(_)));
        assert_eq!(engine.current_epoch(), e0);
        assert_eq!(log.status().pending_batches, 0);
        assert_eq!(engine.metrics().mutation_batches.get(), 0);
    }

    #[test]
    fn compaction_installs_a_clean_equivalent_epoch() {
        let engine = engine();
        let log = Arc::new(MutationLog::new(Arc::clone(&engine), MutationConfig::default()));
        log.apply(&DeltaBatch::new().add_edge(0, 63)).expect("apply 1");
        let r2 = log.apply(&DeltaBatch::new().del_edge(0, 1)).expect("apply 2");
        let before = Arc::clone(engine.current_snapshot().expect("snap").graph());
        let rep = log.compact().expect("compact");
        assert!(rep.epoch > r2.epoch);
        assert_eq!(rep.reapplied_batches, 0);
        let after = Arc::clone(engine.current_snapshot().expect("snap").graph());
        assert!(!after.has_overlay());
        assert_eq!(after.num_edges(), before.num_edges());
        for v in 0..after.num_vertices() as u32 {
            assert_eq!(after.out_neighbors(v), before.out_neighbors(v), "vertex {v}");
        }
        assert_eq!(log.status().pending_batches, 0);
        assert_eq!(engine.metrics().mutation_compactions.get(), 1);
        assert_eq!(engine.metrics().mutation_overlay_edges.get(), 0);
        // A second compaction of a clean graph is a cheap no-op install.
        assert!(log.compact().is_ok());
    }

    #[test]
    fn auto_compaction_triggers_over_threshold() {
        let engine = engine();
        let log = Arc::new(MutationLog::new(
            Arc::clone(&engine),
            MutationConfig { compact_threshold: Some(8) },
        ));
        // One batch touching a few vertices overshoots 8 overlay arcs.
        let r = log
            .apply(&DeltaBatch::new().add_edge(0, 63).add_edge(5, 40).add_edge(7, 21))
            .expect("apply");
        assert!(r.overlay_arcs > 8);
        assert!(r.compaction_started);
        // Wait (bounded) for the background compactor to install.
        for _ in 0..500 {
            if engine.metrics().mutation_compactions.get() == 1 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(engine.metrics().mutation_compactions.get(), 1);
        assert!(!engine.current_snapshot().expect("snap").graph().has_overlay());
    }

    #[test]
    fn rebase_after_external_install_drops_pending() {
        let engine = engine();
        let log = Arc::new(MutationLog::new(Arc::clone(&engine), MutationConfig::default()));
        log.apply(&DeltaBatch::new().add_edge(0, 63)).expect("apply");
        assert_eq!(log.status().pending_batches, 1);
        // Operator replaces the graph out from under the log.
        engine.install_graph(Arc::new(grid3d(3)));
        let r = log.apply(&DeltaBatch::new().add_edge(0, 26)).expect("apply after install");
        assert_eq!(log.status().pending_batches, 1, "old lineage's batch dropped");
        let g = engine.current_snapshot().expect("snap");
        assert_eq!(g.num_vertices(), 27, "delta applied to the new graph");
        assert_eq!(engine.current_epoch(), Some(r.epoch));
    }
}
