//! The serving wire format: one flat JSON object per line, both ways.
//!
//! Requests are parsed by a small character-level scanner rather than a
//! JSON library (the repo carries no serde): a single object of
//! string/number/bool fields, no nesting, no arrays, and — like
//! `ligra::trace` — no escape sequences inside strings. That keeps the
//! grammar small enough to verify by eye while still allowing `:` and
//! `,` inside quoted values (file paths), which a split-based parser
//! could not. Responses are built with [`JsonObj`], which escapes
//! outgoing strings so arbitrary error text stays well-formed.

use std::collections::HashMap;
use std::io::BufRead;
use std::str::FromStr;

/// Hard cap on one request line, in bytes. A line longer than this is
/// reported as malformed (and drained) instead of buffered, so a
/// misbehaving client cannot balloon server memory.
pub const MAX_REQUEST_LINE_BYTES: usize = 64 * 1024;

/// Reads one newline-terminated request line as raw bytes, enforcing
/// [`MAX_REQUEST_LINE_BYTES`] and UTF-8 validity *before* the text ever
/// reaches [`Request::parse`].
///
/// Returns:
/// * `Ok(None)` — clean end of stream;
/// * `Ok(Some(Ok(line)))` — one line, newline stripped (a final
///   unterminated line at EOF is still delivered);
/// * `Ok(Some(Err(msg)))` — the line was oversized or not valid UTF-8;
///   the offending bytes have been drained so the caller can answer with
///   an error response and keep serving;
/// * `Err(e)` — transport-level I/O failure.
pub fn read_request_line<R: BufRead>(
    reader: &mut R,
    max_bytes: usize,
) -> std::io::Result<Option<Result<String, String>>> {
    let mut raw: Vec<u8> = Vec::new();
    let mut dropped = 0usize;
    loop {
        let buf = reader.fill_buf()?;
        if buf.is_empty() {
            // EOF with nothing pending is a clean end of stream.
            if raw.is_empty() && dropped == 0 {
                return Ok(None);
            }
            break;
        }
        let (len, terminated) = match buf.iter().position(|&b| b == b'\n') {
            Some(pos) => (pos, true),
            None => (buf.len(), false),
        };
        if dropped > 0 || raw.len() + len > max_bytes {
            // Past the cap: stop buffering, keep draining to the newline.
            dropped += raw.len() + len;
            raw.clear();
        } else {
            raw.extend_from_slice(&buf[..len]);
        }
        reader.consume(len + usize::from(terminated));
        if terminated {
            break;
        }
    }
    if dropped > 0 {
        return Ok(Some(Err(format!(
            "request line too long ({dropped} bytes exceeds the {max_bytes}-byte limit)"
        ))));
    }
    Ok(Some(match String::from_utf8(raw) {
        Ok(s) => Ok(s),
        Err(_) => Err("request line is not valid UTF-8".to_string()),
    }))
}

/// One parsed request: field name → raw value. String values are
/// unquoted; numbers and booleans keep their literal spelling.
#[derive(Debug, Clone, Default)]
pub struct Request {
    fields: HashMap<String, String>,
}

impl Request {
    /// Parses one request line. Errors name the offending position.
    pub fn parse(line: &str) -> Result<Request, String> {
        let mut fields = HashMap::new();
        let b: Vec<char> = line.chars().collect();
        let mut i = 0usize;
        skip_ws(&b, &mut i);
        expect(&b, &mut i, '{')?;
        skip_ws(&b, &mut i);
        if peek(&b, i) == Some('}') {
            return trailing(&b, i + 1).map(|()| Request { fields });
        }
        loop {
            skip_ws(&b, &mut i);
            let key = parse_string(&b, &mut i)?;
            skip_ws(&b, &mut i);
            expect(&b, &mut i, ':')?;
            skip_ws(&b, &mut i);
            let value = if peek(&b, i) == Some('"') {
                parse_string(&b, &mut i)?
            } else {
                parse_scalar(&b, &mut i)?
            };
            if fields.insert(key.clone(), value).is_some() {
                return Err(format!("duplicate field {key:?}"));
            }
            skip_ws(&b, &mut i);
            match next(&b, &mut i) {
                Some(',') => continue,
                Some('}') => return trailing(&b, i).map(|()| Request { fields }),
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    /// Raw field value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.fields.get(key).map(String::as_str)
    }

    /// Required string field.
    pub fn str(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing field {key:?}"))
    }

    /// Optional numeric field with a default.
    pub fn u64_or(&self, key: &str, default: u64) -> Result<u64, String> {
        self.parse_or(key, default)
    }

    /// Optional boolean field with a default.
    pub fn bool_or(&self, key: &str, default: bool) -> Result<bool, String> {
        self.parse_or(key, default)
    }

    fn parse_or<T: FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| format!("field {key:?}: cannot parse {raw:?}")),
        }
    }
}

fn peek(b: &[char], i: usize) -> Option<char> {
    b.get(i).copied()
}

fn next(b: &[char], i: &mut usize) -> Option<char> {
    let c = peek(b, *i);
    if c.is_some() {
        *i += 1;
    }
    c
}

fn skip_ws(b: &[char], i: &mut usize) {
    while peek(b, *i).is_some_and(|c| c.is_ascii_whitespace()) {
        *i += 1;
    }
}

fn expect(b: &[char], i: &mut usize, want: char) -> Result<(), String> {
    match next(b, i) {
        Some(c) if c == want => Ok(()),
        other => Err(format!("expected {want:?}, got {other:?}")),
    }
}

fn trailing(b: &[char], mut i: usize) -> Result<(), String> {
    skip_ws(b, &mut i);
    match peek(b, i) {
        None => Ok(()),
        Some(c) => Err(format!("trailing input starting at {c:?}")),
    }
}

fn parse_string(b: &[char], i: &mut usize) -> Result<String, String> {
    expect(b, i, '"')?;
    let mut s = String::new();
    loop {
        match next(b, i) {
            Some('"') => return Ok(s),
            Some('\\') => return Err("escape sequences are not supported".to_string()),
            Some(c) if c.is_control() => return Err("control character in string".to_string()),
            Some(c) => s.push(c),
            None => return Err("unterminated string".to_string()),
        }
    }
}

fn parse_scalar(b: &[char], i: &mut usize) -> Result<String, String> {
    let mut s = String::new();
    while let Some(c) = peek(b, *i) {
        if c == ',' || c == '}' || c.is_ascii_whitespace() {
            break;
        }
        if !(c.is_ascii_alphanumeric() || matches!(c, '-' | '+' | '.' | '_')) {
            return Err(format!("unexpected character {c:?} in scalar"));
        }
        s.push(c);
        *i += 1;
    }
    if s.is_empty() {
        return Err("empty value".to_string());
    }
    Ok(s)
}

/// Builder for one flat JSON response object.
#[derive(Debug)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObj { buf: String::from("{") }
    }

    fn sep(&mut self) {
        if self.buf.len() > 1 {
            self.buf.push(',');
        }
    }

    /// Adds a string field, escaping quotes, backslashes, and control
    /// characters.
    pub fn str(mut self, key: &str, value: &str) -> Self {
        self.sep();
        self.buf.push('"');
        self.buf.push_str(key);
        self.buf.push_str("\":\"");
        for c in value.chars() {
            match c {
                '"' => self.buf.push_str("\\\""),
                '\\' => self.buf.push_str("\\\\"),
                '\n' => self.buf.push_str("\\n"),
                // lint: allow(L4): char -> u32 is a lossless widening (scalar values fit in 21 bits)
                c if c.is_control() => self.buf.push_str(&format!("\\u{:04x}", c as u32)),
                c => self.buf.push(c),
            }
        }
        self.buf.push('"');
        self
    }

    /// Adds a pre-formatted (number/bool) field.
    pub fn raw(mut self, key: &str, value: &str) -> Self {
        self.sep();
        self.buf.push('"');
        self.buf.push_str(key);
        self.buf.push_str("\":");
        self.buf.push_str(value);
        self
    }

    /// Adds an unsigned integer field.
    pub fn u64(self, key: &str, value: u64) -> Self {
        self.raw(key, &value.to_string())
    }

    /// Adds a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Closes the object.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonObj {
    fn default() -> Self {
        JsonObj::new()
    }
}

/// The standard error response.
pub fn error_response(msg: &str) -> String {
    JsonObj::new().bool("ok", false).str("error", msg).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_mixed_fields() {
        let r = Request::parse(
            r#"{"op":"submit","query":"bfs","source":42,"deadline_ms":0,"cached":true}"#,
        )
        .unwrap();
        assert_eq!(r.str("op").unwrap(), "submit");
        assert_eq!(r.u64_or("source", 0).unwrap(), 42);
        assert_eq!(r.u64_or("deadline_ms", 9).unwrap(), 0);
        assert!(r.bool_or("cached", false).unwrap());
        assert_eq!(r.u64_or("missing", 7).unwrap(), 7);
    }

    #[test]
    fn paths_with_separators_survive() {
        let r = Request::parse(r#"{"op":"load","path":"/data/graphs/rmat,v2:final.adj"}"#).unwrap();
        assert_eq!(r.str("path").unwrap(), "/data/graphs/rmat,v2:final.adj");
    }

    #[test]
    fn whitespace_and_empty_object_are_tolerated() {
        let r = Request::parse("  { \"op\" : \"stats\" }  ").unwrap();
        assert_eq!(r.str("op").unwrap(), "stats");
        assert!(Request::parse("{}").unwrap().get("op").is_none());
    }

    #[test]
    fn malformed_requests_are_rejected() {
        for bad in [
            "",
            "{",
            r#"{"op":}"#,
            r#"{"op" "x"}"#,
            r#"{"op":"a" trailing"#,
            r#"{"op":"a"}{"op":"b"}"#,
            r#"{"op":"a\nb"}"#, // escapes unsupported
            r#"{"op":"a","op":"b"}"#,
            r#"{"nested":{"x":1}}"#,
        ] {
            assert!(Request::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn truncated_final_line_is_still_delivered() {
        // No trailing newline: the fragment must reach the parser (which
        // will reject it) rather than being dropped or ending the loop
        // early.
        let mut r = std::io::Cursor::new(b"{\"op\":\"stats\"}\n{\"op\":\"sub".to_vec());
        let first = read_request_line(&mut r, MAX_REQUEST_LINE_BYTES).unwrap().unwrap().unwrap();
        assert_eq!(first, "{\"op\":\"stats\"}");
        let second = read_request_line(&mut r, MAX_REQUEST_LINE_BYTES).unwrap().unwrap().unwrap();
        assert_eq!(second, "{\"op\":\"sub");
        assert!(Request::parse(&second).is_err());
        assert!(read_request_line(&mut r, MAX_REQUEST_LINE_BYTES).unwrap().is_none());
    }

    #[test]
    fn non_utf8_line_is_malformed_not_fatal() {
        let mut r = std::io::Cursor::new(b"{\"op\":\"\xff\xfe\"}\n{\"op\":\"ping\"}\n".to_vec());
        let bad = read_request_line(&mut r, MAX_REQUEST_LINE_BYTES).unwrap().unwrap();
        assert!(bad.unwrap_err().contains("UTF-8"));
        // The stream is still usable after the bad line.
        let good = read_request_line(&mut r, MAX_REQUEST_LINE_BYTES).unwrap().unwrap().unwrap();
        assert_eq!(good, "{\"op\":\"ping\"}");
    }

    #[test]
    fn oversized_line_is_drained_and_reported() {
        let mut input = vec![b'x'; 100];
        input.push(b'\n');
        input.extend_from_slice(b"{\"op\":\"ping\"}\n");
        let mut r = std::io::Cursor::new(input);
        let bad = read_request_line(&mut r, 16).unwrap().unwrap();
        let msg = bad.unwrap_err();
        assert!(msg.contains("too long"), "{msg}");
        assert!(msg.contains("100 bytes"), "{msg}");
        // Every oversized byte was drained; the next line parses cleanly.
        let good = read_request_line(&mut r, 16).unwrap().unwrap().unwrap();
        assert_eq!(good, "{\"op\":\"ping\"}");
        assert!(read_request_line(&mut r, 16).unwrap().is_none());
    }

    #[test]
    fn oversized_line_never_buffers_past_the_cap() {
        // A 1 MiB line against a 1 KiB cap with a tiny BufReader: the
        // reader must drain it chunk by chunk without holding it whole.
        let mut input = vec![b'y'; 1 << 20];
        input.push(b'\n');
        let cursor = std::io::Cursor::new(input);
        let mut r = std::io::BufReader::with_capacity(512, cursor);
        let bad = read_request_line(&mut r, 1024).unwrap().unwrap();
        assert!(bad.is_err());
        assert!(read_request_line(&mut r, 1024).unwrap().is_none());
    }

    #[test]
    fn response_builder_escapes() {
        let s = JsonObj::new()
            .bool("ok", false)
            .str("error", "expected \"op\", got \\x")
            .u64("id", 3)
            .finish();
        assert_eq!(s, r#"{"ok":false,"error":"expected \"op\", got \\x","id":3}"#);
    }
}
