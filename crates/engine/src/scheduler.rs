//! The engine proper: a bounded admission queue feeding a fixed pool of
//! panic-isolated worker threads, with per-query deadlines, cooperative
//! cancellation, graceful overload shedding, and an epoch-keyed result
//! cache.
//!
//! Design points:
//!
//! * **Admission control.** `submit` rejects (`QueueFull`) instead of
//!   blocking when the queue is at capacity, and sheds (`Overloaded`,
//!   with a retry-after hint) when the estimated memory footprint of
//!   in-flight queries would exceed the configured budget — a serving
//!   front-end should shed load at the edge, not accumulate unbounded
//!   backlog.
//! * **Snapshot binding.** The snapshot is captured at submit time, so a
//!   graph installed mid-flight never changes what an admitted query
//!   computes on; its epoch keys the cache entry.
//! * **Cancellation and shedding.** Each query gets a [`CancelToken`]
//!   (optionally with a deadline). Workers pre-check it at dequeue: an
//!   explicitly cancelled query is retired as `Cancelled`, and a query
//!   whose queue wait already consumed its deadline is retired as
//!   `Shed` without burning a worker. A running query yields at the
//!   next edgeMap round boundary. Partial results are discarded, never
//!   cached.
//! * **Panic isolation.** Query execution runs under `catch_unwind`: a
//!   panicking app (or injected fault) finishes its query as
//!   [`QueryStatus::Panicked`] with a typed
//!   [`QueryError::Panicked`](crate::QueryError::Panicked) instead of
//!   killing the worker. Workers self-heal, the snapshot epoch stays
//!   valid, and every lock acquisition recovers from poisoning (a
//!   poisoned scheduler mutex only means some other worker panicked
//!   mid-update of plain data the scheduler re-derives).
//! * **Spans.** Every query leaves one [`QuerySpan`] with queue wait,
//!   run time, edgeMap rounds, and dispatch retries — the observability
//!   contract the serving layer's `trace` op exposes.

use crate::cache::ResultCache;
use crate::error::{classify_panic, QueryError};
use crate::lockdep::{tracked_lock, TrackedGuard};
use crate::metrics::{mix64, MetricsRegistry, MetricsSnapshot};
use crate::query::{Query, QueryOutput};
use crate::snapshot::{GraphStore, Snapshot};
use crate::span::{fill_span_buckets, QuerySpan, QueryStatus, TeeRecorder};
use ligra::{CancelToken, EdgeMapOptions, FaultPlan, FaultPoint, Traversal};
use ligra_graph::{Graph, WeightedGraph};
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// How many times a transient fault at the `engine.dispatch` point may
/// re-enqueue one job before it fails for good.
#[cfg(feature = "fault-inject")]
const MAX_DISPATCH_RETRIES: u64 = 2;

/// Locks a scheduler mutex under a named lock site, recovering from
/// poisoning. A worker panic is caught and contained per-query; every
/// structure these mutexes guard (queue, cache, job table, span log) is
/// left consistent between individual operations, so the poison flag
/// carries no information the scheduler needs. The site name feeds the
/// runtime lock-order oracle in `lock-check` builds (DESIGN.md §15).
pub(crate) fn lock<'a, T>(m: &'a Mutex<T>, site: &'static str) -> TrackedGuard<'a, T> {
    tracked_lock(m, site)
}

/// Engine tunables.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads executing queries (the concurrency cap).
    pub workers: usize,
    /// Maximum queries waiting for a worker before `submit` rejects.
    pub queue_capacity: usize,
    /// Result-cache entries.
    pub cache_capacity: usize,
    /// Deadline applied to queries submitted without one (`None` = no
    /// deadline).
    pub default_deadline: Option<Duration>,
    /// Traversal policy handed to every query's `EdgeMapOptions`.
    pub traversal: Traversal,
    /// Estimated-memory budget for in-flight queries, in bytes
    /// (`None` = unlimited). When admitting another query would push the
    /// estimated footprint past the budget, `submit` sheds it with
    /// [`SubmitError::Overloaded`]. A query submitted to an idle engine
    /// is always admitted, so a retry after the hint eventually lands.
    pub memory_budget: Option<u64>,
    /// Deterministic fault-injection schedule. Checked at the
    /// `engine.dispatch`, `engine.cache`, and `edgemap.round` points
    /// only in builds with the `fault-inject` feature; inert otherwise.
    pub fault: Option<Arc<FaultPlan>>,
    /// Directory for per-query kernel traces. When set, every executed
    /// query writes its full per-round trace as
    /// `query-<trace_id>.jsonl` here, joining the engine span (which
    /// carries the same `trace_id`) to its edgeMap rows. `None`
    /// disables row collection entirely (the spans still get O(1)
    /// round counts).
    pub trace_dir: Option<PathBuf>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 32,
            default_deadline: None,
            traversal: Traversal::Auto,
            memory_budget: None,
            fault: None,
            trace_dir: None,
        }
    }
}

/// Why `submit` refused a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// No graph has been installed yet.
    NoGraph,
    /// The admission queue is at capacity; retry later.
    QueueFull,
    /// Admitting the query would exceed the engine's memory budget;
    /// retry after roughly the hinted duration.
    Overloaded {
        /// Load-proportional backoff hint.
        retry_after: Duration,
    },
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::NoGraph => f.write_str("no graph installed"),
            SubmitError::QueueFull => f.write_str("admission queue full"),
            SubmitError::Overloaded { retry_after } => {
                write!(f, "engine overloaded; retry after {}ms", retry_after.as_millis())
            }
        }
    }
}

impl std::error::Error for SubmitError {}

/// Counters the serving layer reports under `stats`.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Current snapshot epoch (`None` before the first install).
    pub epoch: Option<u64>,
    /// Queries waiting for a worker right now.
    pub queued: usize,
    /// Queries executing right now.
    pub running: u64,
    /// Queries accepted (including cache hits).
    pub submitted: u64,
    /// Queries rejected by admission control (queue at capacity).
    pub rejected: u64,
    /// Queries finished with a result.
    pub completed: u64,
    /// Queries cancelled before or during execution.
    pub cancelled: u64,
    /// Queries that failed validation or hit an injected transient
    /// error.
    pub failed: u64,
    /// Queries shed at submit time by the memory-budget admission check.
    pub sheds: u64,
    /// Queries that panicked and were contained by a worker.
    pub panics: u64,
    /// Jobs re-enqueued after a transient dispatch fault.
    pub retries: u64,
    /// Queries retired at dequeue because their queue wait had already
    /// consumed the deadline.
    pub queue_deadline_sheds: u64,
    /// Estimated bytes of in-flight (queued + running) query state.
    pub inflight_bytes: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache LRU evictions.
    pub cache_evictions: u64,
    /// Result-cache entries held.
    pub cache_len: usize,
    /// Queue-wait p50 across all query kinds, from the metrics
    /// histogram buckets (bucket upper bound clamped to the observed
    /// max — the same math the Prometheus exposition's consumers do).
    pub queue_wait_p50_ns: u64,
    /// Queue-wait p95 (bucket math).
    pub queue_wait_p95_ns: u64,
    /// Queue-wait p99 (bucket math).
    pub queue_wait_p99_ns: u64,
    /// Largest observed queue wait (exact).
    pub queue_wait_max_ns: u64,
    /// Run-time p50 across all query kinds (bucket math).
    pub run_p50_ns: u64,
    /// Run-time p95 (bucket math).
    pub run_p95_ns: u64,
    /// Run-time p99 (bucket math).
    pub run_p99_ns: u64,
    /// Largest observed run time (exact).
    pub run_max_ns: u64,
    /// Mutation batches applied to the live graph.
    pub mutation_batches: u64,
    /// Arcs inserted by mutation batches.
    pub mutation_edges_added: u64,
    /// Arc copies removed by mutation batches.
    pub mutation_edges_deleted: u64,
    /// Arcs currently held in the serving snapshot's delta overlay.
    pub overlay_edges: u64,
    /// Vertices currently touched by the serving snapshot's overlay.
    pub overlay_vertices: u64,
    /// Background compactions that installed a clean CSR.
    pub compactions: u64,
    /// Compactions that failed or panicked (store left untouched).
    pub compaction_failures: u64,
}

struct JobState {
    status: QueryStatus,
    result: Option<Arc<QueryOutput>>,
    error: Option<QueryError>,
    span: Option<QuerySpan>,
}

struct Job {
    id: u64,
    /// Correlation id joining span, wire responses, and the on-disk
    /// kernel trace (see [`EngineConfig::trace_dir`]).
    trace_id: String,
    query: Query,
    snapshot: Arc<Snapshot>,
    token: CancelToken,
    submitted: Instant,
    /// Estimated run footprint charged against the memory budget.
    cost_bytes: u64,
    /// Dispatch-fault re-enqueues so far.
    retries: AtomicU64,
    state: Mutex<JobState>,
    done: Condvar,
}

impl Job {
    fn set_status(&self, status: QueryStatus) {
        lock(&self.state, "job.state").status = status;
    }

    fn finish(
        &self,
        status: QueryStatus,
        result: Option<Arc<QueryOutput>>,
        error: Option<QueryError>,
        span: QuerySpan,
    ) {
        let mut st = lock(&self.state, "job.state");
        st.status = status;
        st.result = result;
        st.error = error;
        st.span = Some(span);
        drop(st);
        self.done.notify_all();
    }
}

/// Slot in the metrics registry's retired-by-status counters
/// ([`crate::metrics::registry::RETIRE_STATUSES`]) for a terminal
/// status. Queued/Running are not terminal and map defensively onto
/// the last slot (they are never passed in practice).
fn retire_index(status: QueryStatus) -> usize {
    match status {
        QueryStatus::Done => 0,
        QueryStatus::Cancelled => 1,
        QueryStatus::Failed => 2,
        QueryStatus::Panicked => 3,
        _ => 4, // Shed (and the unreachable non-terminal states)
    }
}

/// Keeps only `[A-Za-z0-9_-]` and caps length at 64: trace ids name
/// files under the trace dir and embed raw (unescaped) in span JSON,
/// so everything else is dropped rather than quoted.
fn sanitize_trace_id(raw: &str) -> String {
    raw.chars().filter(|c| c.is_ascii_alphanumeric() || *c == '_' || *c == '-').take(64).collect()
}

struct Shared {
    config: EngineConfig,
    store: GraphStore,
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_cv: Condvar,
    cache: Mutex<ResultCache>,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    spans: Mutex<Vec<QuerySpan>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    metrics: Arc<MetricsRegistry>,
    /// Startup entropy mixed into generated trace ids, so ids from
    /// different engine processes don't collide on shared trace dirs.
    trace_nonce: u64,
}

/// Handle to one submitted query.
#[derive(Clone)]
pub struct QueryHandle {
    job: Arc<Job>,
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle")
            .field("id", &self.job.id)
            .field("status", &self.status())
            .finish()
    }
}

impl QueryHandle {
    /// Engine-assigned id.
    pub fn id(&self) -> u64 {
        self.job.id
    }

    /// The query's correlation id (client-supplied or generated).
    pub fn trace_id(&self) -> &str {
        &self.job.trace_id
    }

    /// Current status.
    pub fn status(&self) -> QueryStatus {
        lock(&self.job.state, "job.state").status
    }

    /// Requests cooperative cancellation; the query yields at its next
    /// round boundary (or is retired at dequeue if still queued).
    pub fn cancel(&self) {
        self.job.token.cancel();
    }

    /// Blocks until the query reaches a terminal state.
    pub fn wait(&self) -> QueryStatus {
        let mut st = lock(&self.job.state, "job.state");
        while !st.status.is_terminal() {
            st = st.wait(&self.job.done);
        }
        st.status
    }

    /// Blocks up to `timeout`; `None` if still not terminal.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<QueryStatus> {
        let deadline = Instant::now() + timeout;
        let mut st = lock(&self.job.state, "job.state");
        while !st.status.is_terminal() {
            let left = deadline.checked_duration_since(Instant::now())?;
            let (guard, res) = st.wait_timeout(&self.job.done, left);
            st = guard;
            if res.timed_out() && !st.status.is_terminal() {
                return None;
            }
        }
        Some(st.status)
    }

    /// The result, once `Done`.
    pub fn result(&self) -> Option<Arc<QueryOutput>> {
        lock(&self.job.state, "job.state").result.clone()
    }

    /// The error message, once `Failed` or `Panicked`.
    pub fn error(&self) -> Option<String> {
        lock(&self.job.state, "job.state").error.as_ref().map(QueryError::to_string)
    }

    /// The typed error, once `Failed` or `Panicked`.
    pub fn query_error(&self) -> Option<QueryError> {
        lock(&self.job.state, "job.state").error.clone()
    }

    /// The lifecycle span, once terminal.
    pub fn span(&self) -> Option<QuerySpan> {
        lock(&self.job.state, "job.state").span.clone()
    }
}

/// The concurrent query engine. Dropping it drains the queue and joins
/// the workers.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Starts `config.workers` worker threads.
    pub fn new(config: EngineConfig) -> Self {
        let workers_n = config.workers.max(1);
        let cache = ResultCache::new(config.cache_capacity);
        let metrics = Arc::new(MetricsRegistry::new());
        metrics.memory_budget_bytes.set(config.memory_budget.unwrap_or(0));
        // Wall-clock nanos as id entropy; a clock before the epoch
        // (misconfigured container) degrades to a fixed nonce rather
        // than failing engine construction.
        let trace_nonce = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x11a2_a51e_ed00_5eed);
        let shared = Arc::new(Shared {
            config,
            store: GraphStore::new(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            cache: Mutex::new(cache),
            jobs: Mutex::new(HashMap::new()),
            spans: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            metrics,
            trace_nonce,
        });
        let workers = (0..workers_n)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ligra-engine-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn engine worker")
            })
            .collect();
        Engine { shared, workers }
    }

    /// Installs an unweighted graph; returns the new epoch.
    pub fn install_graph(&self, g: Arc<Graph>) -> u64 {
        self.shared.store.install_graph(g)
    }

    /// Installs a weighted graph; returns the new epoch.
    pub fn install_weighted(&self, g: Arc<WeightedGraph>) -> u64 {
        self.shared.store.install_weighted(g)
    }

    /// The current snapshot epoch, if a graph is installed.
    pub fn current_epoch(&self) -> Option<u64> {
        self.shared.store.current().map(|s| s.epoch())
    }

    /// The current snapshot, if a graph is installed. The mutation log
    /// reads the graph it layers deltas over from here, so mutations
    /// always stack on what queries are being served.
    pub fn current_snapshot(&self) -> Option<Arc<Snapshot>> {
        self.shared.store.current()
    }

    /// The configured memory budget, if any (shared with the mutation
    /// log's admission check).
    pub(crate) fn memory_budget(&self) -> Option<u64> {
        self.shared.config.memory_budget
    }

    /// The fault plan this engine was configured with, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.shared.config.fault.clone()
    }

    /// Submits a query against the current snapshot. `deadline` (if any,
    /// else the config default) starts counting immediately — time spent
    /// queued is charged against it. Returns a handle; cache hits come
    /// back already `Done`.
    pub fn submit(
        &self,
        query: Query,
        deadline: Option<Duration>,
    ) -> Result<QueryHandle, SubmitError> {
        self.submit_traced(query, deadline, None)
    }

    /// [`Engine::submit`] with an explicit correlation id. A supplied
    /// `trace_id` is sanitized to `[A-Za-z0-9_-]` (≤ 64 chars) since it
    /// names an on-disk trace file and embeds raw in span JSON; `None`
    /// (or an id that sanitizes to nothing) gets a generated 16-hex-char
    /// id unique to this engine instance.
    pub fn submit_traced(
        &self,
        query: Query,
        deadline: Option<Duration>,
        trace_id: Option<String>,
    ) -> Result<QueryHandle, SubmitError> {
        let sh = &self.shared;
        let snapshot = sh.store.current().ok_or(SubmitError::NoGraph)?;
        let deadline = deadline.or(sh.config.default_deadline);
        let token = match deadline {
            Some(d) => CancelToken::with_timeout(d),
            None => CancelToken::new(),
        };
        let id = sh.next_id.fetch_add(1, Ordering::Relaxed);
        let trace_id = match trace_id.map(|t| sanitize_trace_id(&t)) {
            Some(t) if !t.is_empty() => t,
            _ => format!("{:016x}", mix64(sh.trace_nonce ^ id)),
        };
        let key = (snapshot.epoch(), query.clone());
        let cached = lock(&sh.cache, "scheduler.cache").get(&key);
        let cost_bytes = query.estimated_run_bytes(&snapshot);

        let job = Arc::new(Job {
            id,
            trace_id,
            query,
            snapshot,
            token,
            submitted: Instant::now(),
            cost_bytes,
            retries: AtomicU64::new(0),
            state: Mutex::new(JobState {
                status: QueryStatus::Queued,
                result: None,
                error: None,
                span: None,
            }),
            done: Condvar::new(),
        });

        if let Some(result) = cached {
            // Served without touching the queue: terminal immediately.
            let mut span = base_span(&job, 0);
            span.status = QueryStatus::Done;
            span.cache_hit = true;
            fill_span_buckets(&mut span);
            job.finish(QueryStatus::Done, Some(result), None, span.clone());
            sh.metrics.submitted.incr();
            sh.metrics.retire(retire_index(QueryStatus::Done));
            lock(&sh.spans, "scheduler.spans").push(span);
            lock(&sh.jobs, "scheduler.jobs").insert(id, Arc::clone(&job));
            return Ok(QueryHandle { job });
        }

        // Memory-budget admission. The check-then-charge pair is not
        // atomic — concurrent submits may overshoot the budget by one
        // estimate each — but the estimate itself is coarse; the budget
        // bounds the order of magnitude, not the byte. An idle engine
        // (nothing charged) always admits, so the retry contract is
        // sound even for a single query larger than the budget.
        if let Some(budget) = sh.config.memory_budget {
            let in_use = sh.metrics.inflight_bytes.get();
            if in_use > 0 && in_use.saturating_add(cost_bytes) > budget {
                sh.metrics.overload_sheds.incr();
                return Err(SubmitError::Overloaded { retry_after: self.retry_after_hint() });
            }
        }
        // Charge before publishing the job so a fast worker's release
        // can never precede the charge.
        sh.metrics.inflight_bytes.add(cost_bytes);

        {
            let mut q = lock(&sh.queue, "scheduler.queue");
            if q.len() >= sh.config.queue_capacity {
                sh.metrics.inflight_bytes.sub(cost_bytes);
                sh.metrics.rejected.incr();
                return Err(SubmitError::QueueFull);
            }
            q.push_back(Arc::clone(&job));
            sh.metrics.queue_depth.add(1);
        }
        sh.queue_cv.notify_one();
        sh.metrics.submitted.incr();
        lock(&sh.jobs, "scheduler.jobs").insert(id, Arc::clone(&job));
        Ok(QueryHandle { job })
    }

    /// Load-proportional backoff hint for [`SubmitError::Overloaded`]:
    /// grows with the number of in-flight queries, capped at 500ms.
    pub(crate) fn retry_after_hint(&self) -> Duration {
        let sh = &self.shared;
        let queued = lock(&sh.queue, "scheduler.queue").len() as u64;
        let running = sh.metrics.running.get();
        Duration::from_millis((20 * (queued + running + 1)).min(500))
    }

    /// Looks up a previously submitted query by id.
    pub fn handle(&self, id: u64) -> Option<QueryHandle> {
        lock(&self.shared.jobs, "scheduler.jobs")
            .get(&id)
            .map(|job| QueryHandle { job: Arc::clone(job) })
    }

    /// Aggregate counters for the `stats` op, including histogram-derived
    /// latency quantiles (bucket math over the metrics registry).
    pub fn stats(&self) -> EngineStats {
        let sh = &self.shared;
        let m = &sh.metrics;
        let (cache_hits, cache_misses, cache_evictions, cache_len) = {
            let c = lock(&sh.cache, "scheduler.cache");
            (c.hits(), c.misses(), c.evictions(), c.len())
        };
        let qw = m.merged_queue_wait();
        let rt = m.merged_run_time();
        EngineStats {
            epoch: self.current_epoch(),
            queued: lock(&sh.queue, "scheduler.queue").len(),
            running: m.running.get(),
            submitted: m.submitted.get(),
            rejected: m.rejected.get(),
            completed: m.retired(retire_index(QueryStatus::Done)),
            cancelled: m.retired(retire_index(QueryStatus::Cancelled)),
            failed: m.retired(retire_index(QueryStatus::Failed)),
            sheds: m.overload_sheds.get(),
            panics: m.retired(retire_index(QueryStatus::Panicked)),
            retries: m.retries.get(),
            queue_deadline_sheds: m.retired(retire_index(QueryStatus::Shed)),
            inflight_bytes: m.inflight_bytes.get(),
            cache_hits,
            cache_misses,
            cache_evictions,
            cache_len,
            queue_wait_p50_ns: qw.p50(),
            queue_wait_p95_ns: qw.p95(),
            queue_wait_p99_ns: qw.p99(),
            queue_wait_max_ns: qw.max,
            run_p50_ns: rt.p50(),
            run_p95_ns: rt.p95(),
            run_p99_ns: rt.p99(),
            run_max_ns: rt.max,
            mutation_batches: m.mutation_batches.get(),
            mutation_edges_added: m.mutation_edges_added.get(),
            mutation_edges_deleted: m.mutation_edges_deleted.get(),
            overlay_edges: m.mutation_overlay_edges.get(),
            overlay_vertices: m.mutation_overlay_vertices.get(),
            compactions: m.mutation_compactions.get(),
            compaction_failures: m.mutation_compaction_failures.get(),
        }
    }

    /// The live metrics registry, for out-of-engine recorders (the wire
    /// front-end counts its requests/bytes/malformed lines here).
    pub fn metrics(&self) -> Arc<MetricsRegistry> {
        Arc::clone(&self.shared.metrics)
    }

    /// One consistent-enough sample of every exported metric: registry
    /// folds, cache counters, fault-plan injection counts, and static
    /// configuration. Feeds both the `metrics` wire op and the
    /// Prometheus exposition.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        let sh = &self.shared;
        let m = &sh.metrics;
        let (cache_hits, cache_misses, cache_evictions, cache_entries) = {
            let c = lock(&sh.cache, "scheduler.cache");
            (c.hits(), c.misses(), c.evictions(), c.len() as u64)
        };
        let fault_injections = FaultPoint::ALL
            .iter()
            .map(|&p| {
                let fired = sh.config.fault.as_ref().map_or(0, |plan| plan.injected(p));
                (p.name(), fired)
            })
            .collect();
        MetricsSnapshot {
            epoch: self.current_epoch().unwrap_or(0),
            workers: self.workers.len() as u64,
            queue_capacity: sh.config.queue_capacity as u64,
            queue_depth: m.queue_depth.get(),
            running: m.running.get(),
            inflight_bytes: m.inflight_bytes.get(),
            memory_budget_bytes: m.memory_budget_bytes.get(),
            submitted: m.submitted.get(),
            rejected: m.rejected.get(),
            overload_sheds: m.overload_sheds.get(),
            retired: std::array::from_fn(|i| m.retired(i)),
            retries: m.retries.get(),
            worker_busy_ns: m.worker_busy_ns.get(),
            worker_idle_ns: m.worker_idle_ns.get(),
            cache_hits,
            cache_misses,
            cache_evictions,
            cache_entries,
            partition_rounds: m.partition_rounds.get(),
            partition_bins_flushed: m.partition_bins_flushed.get(),
            partition_scatter_bytes: m.partition_scatter_bytes.get(),
            mutation_batches: m.mutation_batches.get(),
            mutation_edges_added: m.mutation_edges_added.get(),
            mutation_edges_deleted: m.mutation_edges_deleted.get(),
            mutation_overlay_edges: m.mutation_overlay_edges.get(),
            mutation_overlay_vertices: m.mutation_overlay_vertices.get(),
            mutation_compactions: m.mutation_compactions.get(),
            mutation_compaction_failures: m.mutation_compaction_failures.get(),
            mutation_compact_time: m.compaction_snapshot(),
            fault_injections,
            queue_wait: Query::KIND_NAMES
                .iter()
                .enumerate()
                .map(|(i, &k)| (k, m.queue_wait_snapshot(i)))
                .collect(),
            run_time: Query::KIND_NAMES
                .iter()
                .enumerate()
                .map(|(i, &k)| (k, m.run_time_snapshot(i)))
                .collect(),
            wire_requests: m.wire_requests.get(),
            wire_bytes: m.wire_bytes.get(),
            wire_malformed: m.wire_malformed.get(),
        }
    }

    /// All spans recorded so far, submission order.
    pub fn spans(&self) -> Vec<QuerySpan> {
        lock(&self.shared.spans, "scheduler.spans").clone()
    }

    /// The span of one query, if it has reached a terminal state.
    pub fn span(&self, id: u64) -> Option<QuerySpan> {
        self.handle(id).and_then(|h| h.span())
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The configured admission-queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.shared.config.queue_capacity
    }

    /// `true` while every spawned worker thread is still alive. The
    /// chaos suite's liveness probe: panic isolation means this stays
    /// `true` no matter what queries do.
    pub fn workers_alive(&self) -> bool {
        self.workers.iter().all(|w| !w.is_finished())
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(sh: &Shared) {
    loop {
        let idle_start = Instant::now();
        let job = {
            let mut q = lock(&sh.queue, "scheduler.queue");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if sh.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = q.wait(&sh.queue_cv);
            }
        };
        sh.metrics.worker_idle_ns.add(idle_start.elapsed().as_nanos() as u64);
        sh.metrics.queue_depth.sub(1);
        sh.metrics.running.add(1);
        let busy_start = Instant::now();
        // `run_job` contains its own unwind boundary around query
        // execution; this outer one is a backstop against scheduler
        // bugs, so a worker can never die and a waiter can never hang
        // on a job that silently evaporated.
        if catch_unwind(AssertUnwindSafe(|| run_job(sh, &job))).is_err()
            && !lock(&job.state, "job.state").status.is_terminal()
        {
            let err = QueryError::Panicked {
                point: "scheduler",
                msg: "worker recovered from an unexpected scheduler panic".to_string(),
            };
            let span = base_span(&job, 0);
            finalize(sh, &job, span, QueryStatus::Panicked, None, Some(err));
        }
        sh.metrics.worker_busy_ns.add(busy_start.elapsed().as_nanos() as u64);
    }
}

fn base_span(job: &Job, queue_wait_ns: u64) -> QuerySpan {
    QuerySpan {
        id: job.id,
        trace_id: job.trace_id.clone(),
        query: job.query.name().to_string(),
        epoch: job.snapshot.epoch(),
        status: QueryStatus::Running,
        cache_hit: false,
        queue_wait_ns,
        queue_wait_bucket: 0,
        run_ns: 0,
        run_bucket: 0,
        rounds: 0,
        events: 0,
        retries: job.retries.load(Ordering::Relaxed),
    }
}

/// What one protected execution attempt produced.
enum Executed {
    /// Clean result (already cached unless the cache point faulted).
    Success(Arc<QueryOutput>),
    /// The app drained at a round boundary after cancellation.
    CancelledRun,
    /// Validation (or app-level) error.
    AppError(String),
    /// A transient injected error at the `engine.dispatch` point.
    #[cfg(feature = "fault-inject")]
    DispatchFault(ligra::FaultError),
}

fn run_job(sh: &Shared, job: &Arc<Job>) {
    let queue_wait_ns = job.submitted.elapsed().as_nanos() as u64;
    let mut span = base_span(job, queue_wait_ns);
    // Observe queue wait once per query: a fault-retried job comes back
    // through here with `retries > 0` and would otherwise double-count.
    if span.retries == 0 {
        sh.metrics.observe_queue_wait(job.query.kind_index(), queue_wait_ns);
    }

    // Pre-run checks: don't burn a worker on a query that can no longer
    // produce a useful answer. An explicit cancel is reported as
    // `Cancelled`; a deadline that expired while the query sat in the
    // queue is the engine's fault, reported as `Shed` so clients can
    // tell overload from their own cancellations.
    if job.token.cancel_requested() {
        finalize(sh, job, span, QueryStatus::Cancelled, None, None);
        return;
    }
    if job.token.is_cancelled() {
        finalize(sh, job, span, QueryStatus::Shed, None, None);
        return;
    }

    job.set_status(QueryStatus::Running);
    #[allow(unused_mut)]
    let mut opts = EdgeMapOptions::new().traversal(sh.config.traversal).cancel(&job.token);
    #[cfg(feature = "fault-inject")]
    if let Some(plan) = &sh.config.fault {
        opts = opts.fault_plan(plan);
    }

    let mut counter = TeeRecorder::new(sh.config.trace_dir.is_some());
    let start = Instant::now();
    // The unwind boundary: everything a query can make panic — the
    // dispatch fault point, the app itself (including injected faults at
    // round boundaries), and the cache fault point — is contained here.
    let exec = catch_unwind(AssertUnwindSafe(|| {
        #[cfg(feature = "fault-inject")]
        if let Some(plan) = &sh.config.fault {
            if let Err(e) = plan.check(ligra::FaultPoint::EngineDispatch) {
                return Executed::DispatchFault(e);
            }
        }
        match job.query.run(&job.snapshot, opts, &mut counter) {
            Err(msg) => Executed::AppError(msg),
            Ok(_) if job.token.is_cancelled() => {
                // The app drained at a round boundary; its partial state
                // is not a valid answer. Discard, never cache.
                Executed::CancelledRun
            }
            Ok(out) => {
                let result = Arc::new(out);
                // The `engine.cache` fault point: a spurious error here
                // degrades to a cache miss (the result is still
                // returned, just not cached); a panic is contained by
                // the surrounding boundary before the insert happens,
                // so a faulted run can never populate the cache.
                #[allow(unused_mut)]
                let mut cacheable = true;
                #[cfg(feature = "fault-inject")]
                if let Some(plan) = &sh.config.fault {
                    if plan.check(ligra::FaultPoint::EngineCache).is_err() {
                        cacheable = false;
                    }
                }
                if cacheable {
                    lock(&sh.cache, "scheduler.cache")
                        .insert((job.snapshot.epoch(), job.query.clone()), Arc::clone(&result));
                }
                Executed::Success(result)
            }
        }
    }));
    span.run_ns = start.elapsed().as_nanos() as u64;
    span.rounds = counter.counter.edge_map_rounds;
    span.events = counter.counter.events;
    // Partition kernel telemetry goes to the metrics registry (the span
    // schema is pinned); counts survive even if the run then errors.
    sh.metrics.partition_rounds.add(counter.counter.partitioned_rounds);
    sh.metrics.partition_bins_flushed.add(counter.counter.bins_flushed);
    sh.metrics.partition_scatter_bytes.add(counter.counter.scatter_bytes);

    let (status, result, error) = match exec {
        Ok(Executed::Success(result)) => (QueryStatus::Done, Some(result), None),
        Ok(Executed::CancelledRun) => (QueryStatus::Cancelled, None, None),
        Ok(Executed::AppError(msg)) => (QueryStatus::Failed, None, Some(QueryError::App(msg))),
        #[cfg(feature = "fault-inject")]
        Ok(Executed::DispatchFault(e)) => {
            let attempts = job.retries.fetch_add(1, Ordering::Relaxed) + 1;
            if attempts <= MAX_DISPATCH_RETRIES {
                // Bounded retry: hand the job back to the queue. The
                // deadline keeps counting from the original submit, so
                // a retried job can still be shed at its next dequeue.
                sh.metrics.retries.incr();
                job.set_status(QueryStatus::Queued);
                {
                    let mut q = lock(&sh.queue, "scheduler.queue");
                    q.push_back(Arc::clone(job));
                    sh.metrics.queue_depth.add(1);
                }
                sh.queue_cv.notify_one();
                sh.metrics.running.sub(1);
                return;
            }
            (
                QueryStatus::Failed,
                None,
                Some(QueryError::Injected { point: e.point.name(), hit: e.hit }),
            )
        }
        Err(payload) => {
            let err = classify_panic(payload.as_ref());
            match err {
                QueryError::Injected { .. } => {
                    // An injected `Error` at a point with no Result
                    // channel (edgemap.round) arrives by unwinding but
                    // is still a typed transient failure, not a panic.
                    (QueryStatus::Failed, None, Some(err))
                }
                _ => (QueryStatus::Panicked, None, Some(err)),
            }
        }
    };
    // The run executed (possibly to a panic or cancellation) — record
    // its duration. Retried attempts returned above and pre-run
    // retirees never reach here, so the histogram sees one observation
    // per executed attempt that retired.
    sh.metrics.observe_run_time(job.query.kind_index(), span.run_ns);
    // The kernel-trace join: whatever rounds this run produced —
    // including a partial trace from a cancelled or panicked run — land
    // on disk under the query's trace id.
    if let Some(stats) = counter.trace.take() {
        if let Some(dir) = &sh.config.trace_dir {
            if !stats.rounds.is_empty() {
                if let Err(e) = ligra::save_jsonl(dir, &format!("query-{}", job.trace_id), &stats) {
                    eprintln!("ligra-engine: kernel trace {e}");
                }
            }
        }
    }
    span.retries = job.retries.load(Ordering::Relaxed);
    finalize(sh, job, span, status, result, error);
}

/// Single exit point for terminal jobs: counts the terminal outcome,
/// stamps the span's histogram buckets, releases the memory-budget
/// charge, records the span, and (gauge before notification) drops the
/// running count before waking waiters, so a waiter that observes the
/// terminal status also observes the query as no longer running.
fn finalize(
    sh: &Shared,
    job: &Job,
    mut span: QuerySpan,
    status: QueryStatus,
    result: Option<Arc<QueryOutput>>,
    error: Option<QueryError>,
) {
    span.status = status;
    fill_span_buckets(&mut span);
    sh.metrics.retire(retire_index(status));
    sh.metrics.inflight_bytes.sub(job.cost_bytes);
    lock(&sh.spans, "scheduler.spans").push(span.clone());
    sh.metrics.running.sub(1);
    job.finish(status, result, error, span);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ligra_graph::generators::rmat::RmatOptions;
    use ligra_graph::generators::{grid3d, rmat};

    fn engine(workers: usize, queue: usize) -> Engine {
        Engine::new(EngineConfig {
            workers,
            queue_capacity: queue,
            cache_capacity: 8,
            ..EngineConfig::default()
        })
    }

    #[test]
    fn submit_before_install_is_rejected() {
        let e = engine(1, 4);
        assert_eq!(e.submit(Query::Cc, None).unwrap_err(), SubmitError::NoGraph);
    }

    #[test]
    fn basic_query_round_trip() {
        let e = engine(2, 8);
        let epoch = e.install_graph(Arc::new(grid3d(6)));
        let h = e.submit(Query::Bfs { source: 0 }, None).unwrap();
        assert_eq!(h.wait(), QueryStatus::Done);
        let span = h.span().unwrap();
        assert_eq!(span.epoch, epoch);
        assert!(!span.cache_hit);
        assert!(span.rounds > 0);
        assert_eq!(span.retries, 0);
        match h.result().unwrap().as_ref() {
            QueryOutput::Bfs(r) => assert_eq!(r.reached, 216),
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn repeat_query_on_same_epoch_hits_cache() {
        let e = engine(1, 8);
        e.install_graph(Arc::new(grid3d(5)));
        let h1 = e.submit(Query::Bfs { source: 3 }, None).unwrap();
        assert_eq!(h1.wait(), QueryStatus::Done);
        let h2 = e.submit(Query::Bfs { source: 3 }, None).unwrap();
        assert_eq!(h2.wait(), QueryStatus::Done);
        assert!(h2.span().unwrap().cache_hit);
        // Same Arc — not a recompute.
        assert!(Arc::ptr_eq(&h1.result().unwrap(), &h2.result().unwrap()));
        let stats = e.stats();
        assert_eq!(stats.cache_hits, 1);
        // New epoch invalidates.
        e.install_graph(Arc::new(grid3d(5)));
        let h3 = e.submit(Query::Bfs { source: 3 }, None).unwrap();
        assert_eq!(h3.wait(), QueryStatus::Done);
        assert!(!h3.span().unwrap().cache_hit);
    }

    #[test]
    fn zero_deadline_is_shed_at_dequeue() {
        let e = engine(1, 8);
        e.install_graph(Arc::new(rmat(&RmatOptions::paper(10))));
        let h = e.submit(Query::PageRank { iters: 1_000_000 }, Some(Duration::ZERO)).unwrap();
        assert_eq!(h.wait(), QueryStatus::Shed);
        let span = h.span().unwrap();
        assert_eq!(span.status, QueryStatus::Shed);
        // Shed before running: no round ever executed, no partial result.
        assert_eq!(span.rounds, 0, "shed query must not run");
        assert!(h.result().is_none(), "shed query must not expose a partial result");
        let stats = e.stats();
        assert_eq!(stats.queue_deadline_sheds, 1);
        assert_eq!(stats.cancelled, 0);
    }

    #[test]
    fn explicit_cancel_stops_a_long_query() {
        let e = engine(1, 8);
        e.install_graph(Arc::new(rmat(&RmatOptions::paper(11))));
        let h = e.submit(Query::PageRank { iters: 1_000_000 }, None).unwrap();
        // Let it start, then pull the plug.
        std::thread::sleep(Duration::from_millis(30));
        h.cancel();
        let status = h.wait();
        assert_eq!(status, QueryStatus::Cancelled);
        assert!(e.span(h.id()).is_some());
    }

    #[test]
    fn admission_queue_rejects_when_full() {
        let e = engine(1, 1);
        e.install_graph(Arc::new(rmat(&RmatOptions::paper(10))));
        // Saturate: one long query runs, one waits, further submits bounce.
        let _h1 = e.submit(Query::PageRank { iters: 10_000 }, None).unwrap();
        let mut rejected = 0;
        for _ in 0..20 {
            match e.submit(Query::PageRank { iters: 10_001 }, None) {
                Err(SubmitError::QueueFull) => rejected += 1,
                Ok(_) => {}
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(rejected > 0, "bounded queue never rejected");
        assert!(e.stats().rejected > 0);
    }

    #[test]
    fn memory_budget_sheds_with_retry_hint() {
        let g = Arc::new(rmat(&RmatOptions::paper(9)));
        let cost = Query::PageRank { iters: 1_000_000 }
            .estimated_run_bytes(&Snapshot::from_graph(1, Arc::clone(&g)));
        // Budget fits two in-flight PageRanks but not three. With one
        // worker, the second submit stays *queued* (still charged), so
        // the third submit deterministically sees the budget exceeded.
        let e = Engine::new(EngineConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 8,
            memory_budget: Some(2 * cost + cost / 2),
            ..EngineConfig::default()
        });
        e.install_graph(g);
        let b1 = e.submit(Query::PageRank { iters: 1_000_000 }, None).unwrap();
        let b2 = e.submit(Query::PageRank { iters: 1_000_001 }, None).unwrap();
        match e.submit(Query::PageRank { iters: 1_000_002 }, None) {
            Err(SubmitError::Overloaded { retry_after }) => {
                assert!(retry_after > Duration::ZERO);
            }
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(e.stats().sheds, 1);
        b1.cancel();
        b2.cancel();
        assert_eq!(b1.wait(), QueryStatus::Cancelled);
        assert_eq!(b2.wait(), QueryStatus::Cancelled);
        // The budget charge is released at terminal state: an idle
        // engine admits again (the retry contract).
        let h3 = e.submit(Query::Bfs { source: 0 }, None).unwrap();
        assert_eq!(h3.wait(), QueryStatus::Done);
        assert_eq!(e.stats().inflight_bytes, 0);
    }

    #[test]
    fn queue_wait_consuming_the_deadline_sheds_not_cancels() {
        let e = engine(1, 8);
        e.install_graph(Arc::new(rmat(&RmatOptions::paper(11))));
        // A long query occupies the only worker...
        let blocker = e.submit(Query::PageRank { iters: 1_000_000 }, None).unwrap();
        // ...while a short-deadline query waits behind it.
        let starved = e.submit(Query::Bfs { source: 0 }, Some(Duration::from_millis(1))).unwrap();
        std::thread::sleep(Duration::from_millis(20));
        blocker.cancel();
        assert_eq!(blocker.wait(), QueryStatus::Cancelled);
        assert_eq!(starved.wait(), QueryStatus::Shed);
        assert!(e.stats().queue_deadline_sheds >= 1);
        assert!(e.workers_alive());
    }

    #[test]
    fn failed_validation_reports_error() {
        let e = engine(1, 4);
        e.install_graph(Arc::new(grid3d(3)));
        let h = e.submit(Query::Bfs { source: 1_000_000 }, None).unwrap();
        assert_eq!(h.wait(), QueryStatus::Failed);
        assert!(h.error().unwrap().contains("out of range"));
        assert!(matches!(h.query_error(), Some(QueryError::App(_))));
        assert_eq!(e.stats().failed, 1);
    }

    #[test]
    fn concurrent_queries_all_complete() {
        let e = engine(4, 64);
        e.install_graph(Arc::new(rmat(&RmatOptions::paper(9))));
        let handles: Vec<_> =
            (0..16).map(|i| e.submit(Query::Bfs { source: i * 7 % 512 }, None).unwrap()).collect();
        for h in &handles {
            assert_eq!(h.wait(), QueryStatus::Done);
        }
        let stats = e.stats();
        assert_eq!(stats.completed, 16);
        assert_eq!(stats.panics, 0);
        assert_eq!(stats.inflight_bytes, 0);
        assert_eq!(e.spans().len(), 16);
        assert!(e.workers_alive());
    }

    #[test]
    fn trace_ids_are_generated_unique_and_sanitized() {
        let e = engine(1, 8);
        e.install_graph(Arc::new(grid3d(4)));
        let h1 = e.submit(Query::Bfs { source: 0 }, None).unwrap();
        let h2 = e.submit(Query::Bfs { source: 1 }, None).unwrap();
        assert_eq!(h1.trace_id().len(), 16, "generated ids are 16 hex chars");
        assert_ne!(h1.trace_id(), h2.trace_id());
        h1.wait();
        assert_eq!(h1.span().unwrap().trace_id, h1.trace_id());

        // Client-supplied ids survive verbatim when clean...
        let h3 = e.submit_traced(Query::Bfs { source: 2 }, None, Some("req-42_A".into())).unwrap();
        assert_eq!(h3.trace_id(), "req-42_A");
        // ...and are stripped of anything unsafe for filenames/JSON.
        let h4 =
            e.submit_traced(Query::Bfs { source: 3 }, None, Some("../x\"y\nz".into())).unwrap();
        assert_eq!(h4.trace_id(), "xyz");
        // An id that sanitizes away entirely falls back to generated.
        let h5 = e.submit_traced(Query::Bfs { source: 4 }, None, Some("///".into())).unwrap();
        assert_eq!(h5.trace_id().len(), 16);
    }

    #[test]
    fn trace_dir_joins_span_to_kernel_rows() {
        let dir = std::env::temp_dir().join(format!(
            "ligra-trace-test-{}-{:x}",
            std::process::id(),
            0x7e57u32
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let e = Engine::new(EngineConfig {
            workers: 1,
            queue_capacity: 8,
            cache_capacity: 8,
            trace_dir: Some(dir.clone()),
            ..EngineConfig::default()
        });
        e.install_graph(Arc::new(grid3d(5)));
        let h = e.submit_traced(Query::Bfs { source: 0 }, None, Some("join-me".into())).unwrap();
        assert_eq!(h.wait(), QueryStatus::Done);
        let span = h.span().unwrap();
        // The span's trace_id names the on-disk kernel trace...
        let path = dir.join(format!("query-{}.jsonl", span.trace_id));
        let text = std::fs::read_to_string(&path).expect("kernel trace written");
        let stats = ligra::from_json_lines(&text).expect("trace re-imports");
        // ...and its edgeMap rows agree with the span's round count.
        let edge_rounds =
            stats.rounds.iter().filter(|r| r.op == ligra::stats::Op::EdgeMap).count() as u64;
        assert_eq!(edge_rounds, span.rounds, "span rounds must match kernel trace rows");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn metrics_snapshot_tracks_the_lifecycle() {
        let e = engine(2, 8);
        e.install_graph(Arc::new(grid3d(5)));
        for i in 0..4 {
            let h = e.submit(Query::Bfs { source: i }, None).unwrap();
            assert_eq!(h.wait(), QueryStatus::Done);
        }
        // One repeat = a cache hit (still submitted + retired done).
        let h = e.submit(Query::Bfs { source: 0 }, None).unwrap();
        assert_eq!(h.wait(), QueryStatus::Done);
        let m = e.metrics_snapshot();
        assert_eq!(m.submitted, 5);
        assert_eq!(m.retired[0], 5, "all five retired done");
        assert_eq!(m.cache_hits, 1);
        assert_eq!(m.queue_depth, 0);
        assert_eq!(m.running, 0);
        assert_eq!(m.inflight_bytes, 0);
        // Four executed runs (the cache hit never ran).
        let rt = m.merged_run_time();
        assert_eq!(rt.count, 4);
        assert!(rt.max > 0);
        let qw = m.merged_queue_wait();
        assert_eq!(qw.count, 4, "cache hits skip the queue-wait histogram");
        // Bucket quantiles agree between stats() and the snapshot.
        let stats = e.stats();
        assert_eq!(stats.run_p99_ns, rt.p99());
        assert_eq!(stats.run_max_ns, rt.max);
        assert!(m.worker_idle_ns > 0, "workers parked at some point");
        assert!(m.worker_busy_ns > 0);
        // Every query kind appears in the per-kind tables, in order.
        let kinds: Vec<&str> = m.run_time.iter().map(|(k, _)| *k).collect();
        assert_eq!(kinds, Query::KIND_NAMES);
    }

    // ----- fault-injection behaviour (compiled only with the feature) -----

    #[cfg(feature = "fault-inject")]
    mod faulted {
        use super::*;
        use ligra::{FaultAction, FaultPlan, FaultPoint};

        fn faulted_engine(plan: FaultPlan) -> Engine {
            Engine::new(EngineConfig {
                workers: 1,
                queue_capacity: 16,
                cache_capacity: 8,
                fault: Some(Arc::new(plan)),
                ..EngineConfig::default()
            })
        }

        #[test]
        fn injected_panic_is_contained_and_worker_self_heals() {
            let plan = FaultPlan::seeded(1).arm_at(FaultPoint::EdgemapRound, FaultAction::Panic, 1);
            let e = faulted_engine(plan);
            e.install_graph(Arc::new(grid3d(5)));
            let h = e.submit(Query::Bfs { source: 0 }, None).unwrap();
            assert_eq!(h.wait(), QueryStatus::Panicked);
            match h.query_error() {
                Some(QueryError::Panicked { point: "edgemap.round", .. }) => {}
                other => panic!("expected Panicked at edgemap.round, got {other:?}"),
            }
            assert!(h.result().is_none());
            // The same worker serves the next query: self-healed.
            let h2 = e.submit(Query::Bfs { source: 1 }, None).unwrap();
            assert_eq!(h2.wait(), QueryStatus::Done);
            let stats = e.stats();
            assert_eq!(stats.panics, 1);
            assert_eq!(stats.completed, 1);
            assert!(e.workers_alive());
        }

        #[test]
        fn injected_error_at_round_boundary_fails_typed() {
            let plan = FaultPlan::seeded(2).arm_at(FaultPoint::EdgemapRound, FaultAction::Error, 1);
            let e = faulted_engine(plan);
            e.install_graph(Arc::new(grid3d(5)));
            let h = e.submit(Query::Bfs { source: 0 }, None).unwrap();
            assert_eq!(h.wait(), QueryStatus::Failed);
            let err = h.query_error().unwrap();
            assert!(err.is_transient(), "injected error must look retryable: {err:?}");
            assert_eq!(e.stats().panics, 0);
            assert!(e.workers_alive());
        }

        #[test]
        fn transient_dispatch_fault_retries_then_succeeds() {
            let plan =
                FaultPlan::seeded(3).arm_at(FaultPoint::EngineDispatch, FaultAction::Error, 1);
            let e = faulted_engine(plan);
            e.install_graph(Arc::new(grid3d(5)));
            let h = e.submit(Query::Bfs { source: 0 }, None).unwrap();
            assert_eq!(h.wait(), QueryStatus::Done, "one transient fault must be retried away");
            assert_eq!(h.span().unwrap().retries, 1);
            assert_eq!(e.stats().retries, 1);
        }

        #[test]
        fn persistent_dispatch_fault_exhausts_retries() {
            let plan =
                FaultPlan::seeded(4).arm_every(FaultPoint::EngineDispatch, FaultAction::Error, 1);
            let e = faulted_engine(plan);
            e.install_graph(Arc::new(grid3d(5)));
            let h = e.submit(Query::Bfs { source: 0 }, None).unwrap();
            assert_eq!(h.wait(), QueryStatus::Failed);
            assert_eq!(
                h.query_error(),
                Some(QueryError::Injected {
                    point: "engine.dispatch",
                    hit: MAX_DISPATCH_RETRIES + 1,
                })
            );
            assert_eq!(e.stats().retries, MAX_DISPATCH_RETRIES);
        }

        #[test]
        fn cache_fault_degrades_to_a_miss_and_never_caches_faulted_runs() {
            let plan = FaultPlan::seeded(5).arm_at(FaultPoint::EngineCache, FaultAction::Error, 1);
            let e = faulted_engine(plan);
            e.install_graph(Arc::new(grid3d(5)));
            let h1 = e.submit(Query::Bfs { source: 2 }, None).unwrap();
            assert_eq!(h1.wait(), QueryStatus::Done);
            // The insert was suppressed, so the repeat is a miss...
            let h2 = e.submit(Query::Bfs { source: 2 }, None).unwrap();
            assert_eq!(h2.wait(), QueryStatus::Done);
            assert!(!h2.span().unwrap().cache_hit);
            // ...and the second (clean) run does populate the cache.
            let h3 = e.submit(Query::Bfs { source: 2 }, None).unwrap();
            assert_eq!(h3.wait(), QueryStatus::Done);
            assert!(h3.span().unwrap().cache_hit);
        }
    }
}
