//! The engine proper: a bounded admission queue feeding a fixed pool of
//! worker threads, with per-query deadlines, cooperative cancellation,
//! and an epoch-keyed result cache.
//!
//! Design points:
//!
//! * **Admission control.** `submit` rejects (`QueueFull`) instead of
//!   blocking when the queue is at capacity — a serving front-end should
//!   shed load at the edge, not accumulate unbounded backlog.
//! * **Snapshot binding.** The snapshot is captured at submit time, so a
//!   graph installed mid-flight never changes what an admitted query
//!   computes on; its epoch keys the cache entry.
//! * **Cancellation.** Each query gets a [`CancelToken`] (optionally
//!   with a deadline). Workers pre-check it at dequeue — a query whose
//!   deadline expired while queued is retired without running — and
//!   thread it through `EdgeMapOptions`, so a running query yields at
//!   the next edgeMap round boundary. Partial results of cancelled
//!   queries are discarded, never cached.
//! * **Spans.** Every query leaves one [`QuerySpan`] with queue wait,
//!   run time, and edgeMap rounds executed — the observability contract
//!   the serving layer's `trace` op exposes.

use crate::cache::ResultCache;
use crate::query::{Query, QueryOutput};
use crate::snapshot::{GraphStore, Snapshot};
use crate::span::{QuerySpan, QueryStatus, RoundCounter};
use ligra::{CancelToken, EdgeMapOptions, Traversal};
use ligra_graph::{Graph, WeightedGraph};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Engine tunables.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads executing queries (the concurrency cap).
    pub workers: usize,
    /// Maximum queries waiting for a worker before `submit` rejects.
    pub queue_capacity: usize,
    /// Result-cache entries.
    pub cache_capacity: usize,
    /// Deadline applied to queries submitted without one (`None` = no
    /// deadline).
    pub default_deadline: Option<Duration>,
    /// Traversal policy handed to every query's `EdgeMapOptions`.
    pub traversal: Traversal,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            workers: 2,
            queue_capacity: 64,
            cache_capacity: 32,
            default_deadline: None,
            traversal: Traversal::Auto,
        }
    }
}

/// Why `submit` refused a query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// No graph has been installed yet.
    NoGraph,
    /// The admission queue is at capacity; retry later.
    QueueFull,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::NoGraph => f.write_str("no graph installed"),
            SubmitError::QueueFull => f.write_str("admission queue full"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Counters the serving layer reports under `stats`.
#[derive(Debug, Clone, Default)]
pub struct EngineStats {
    /// Current snapshot epoch (`None` before the first install).
    pub epoch: Option<u64>,
    /// Queries waiting for a worker right now.
    pub queued: usize,
    /// Queries executing right now.
    pub running: u64,
    /// Queries accepted (including cache hits).
    pub submitted: u64,
    /// Queries rejected by admission control.
    pub rejected: u64,
    /// Queries finished with a result.
    pub completed: u64,
    /// Queries cancelled before or during execution.
    pub cancelled: u64,
    /// Queries that failed validation.
    pub failed: u64,
    /// Result-cache hits.
    pub cache_hits: u64,
    /// Result-cache misses.
    pub cache_misses: u64,
    /// Result-cache entries held.
    pub cache_len: usize,
}

struct JobState {
    status: QueryStatus,
    result: Option<Arc<QueryOutput>>,
    error: Option<String>,
    span: Option<QuerySpan>,
}

struct Job {
    id: u64,
    query: Query,
    snapshot: Arc<Snapshot>,
    token: CancelToken,
    submitted: Instant,
    state: Mutex<JobState>,
    done: Condvar,
}

impl Job {
    fn set_status(&self, status: QueryStatus) {
        self.state.lock().expect("scheduler lock poisoned").status = status;
    }

    fn finish(
        &self,
        status: QueryStatus,
        result: Option<Arc<QueryOutput>>,
        error: Option<String>,
        span: QuerySpan,
    ) {
        let mut st = self.state.lock().expect("scheduler lock poisoned");
        st.status = status;
        st.result = result;
        st.error = error;
        st.span = Some(span);
        drop(st);
        self.done.notify_all();
    }
}

#[derive(Default)]
struct Counters {
    submitted: AtomicU64,
    rejected: AtomicU64,
    completed: AtomicU64,
    cancelled: AtomicU64,
    failed: AtomicU64,
    running: AtomicU64,
}

struct Shared {
    config: EngineConfig,
    store: GraphStore,
    queue: Mutex<VecDeque<Arc<Job>>>,
    queue_cv: Condvar,
    cache: Mutex<ResultCache>,
    jobs: Mutex<HashMap<u64, Arc<Job>>>,
    spans: Mutex<Vec<QuerySpan>>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    counters: Counters,
}

/// Handle to one submitted query.
#[derive(Clone)]
pub struct QueryHandle {
    job: Arc<Job>,
}

impl std::fmt::Debug for QueryHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryHandle")
            .field("id", &self.job.id)
            .field("status", &self.status())
            .finish()
    }
}

impl QueryHandle {
    /// Engine-assigned id.
    pub fn id(&self) -> u64 {
        self.job.id
    }

    /// Current status.
    pub fn status(&self) -> QueryStatus {
        self.job.state.lock().expect("scheduler lock poisoned").status
    }

    /// Requests cooperative cancellation; the query yields at its next
    /// round boundary (or is retired at dequeue if still queued).
    pub fn cancel(&self) {
        self.job.token.cancel();
    }

    /// Blocks until the query reaches a terminal state.
    pub fn wait(&self) -> QueryStatus {
        let mut st = self.job.state.lock().expect("scheduler lock poisoned");
        while !st.status.is_terminal() {
            st = self.job.done.wait(st).expect("scheduler lock poisoned");
        }
        st.status
    }

    /// Blocks up to `timeout`; `None` if still not terminal.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<QueryStatus> {
        let deadline = Instant::now() + timeout;
        let mut st = self.job.state.lock().expect("scheduler lock poisoned");
        while !st.status.is_terminal() {
            let left = deadline.checked_duration_since(Instant::now())?;
            let (guard, res) =
                self.job.done.wait_timeout(st, left).expect("scheduler lock poisoned");
            st = guard;
            if res.timed_out() && !st.status.is_terminal() {
                return None;
            }
        }
        Some(st.status)
    }

    /// The result, once `Done`.
    pub fn result(&self) -> Option<Arc<QueryOutput>> {
        self.job.state.lock().expect("scheduler lock poisoned").result.clone()
    }

    /// The validation error, once `Failed`.
    pub fn error(&self) -> Option<String> {
        self.job.state.lock().expect("scheduler lock poisoned").error.clone()
    }

    /// The lifecycle span, once terminal.
    pub fn span(&self) -> Option<QuerySpan> {
        self.job.state.lock().expect("scheduler lock poisoned").span.clone()
    }
}

/// The concurrent query engine. Dropping it drains the queue and joins
/// the workers.
pub struct Engine {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Starts `config.workers` worker threads.
    pub fn new(config: EngineConfig) -> Self {
        let workers_n = config.workers.max(1);
        let cache = ResultCache::new(config.cache_capacity);
        let shared = Arc::new(Shared {
            config,
            store: GraphStore::new(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            cache: Mutex::new(cache),
            jobs: Mutex::new(HashMap::new()),
            spans: Mutex::new(Vec::new()),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
        });
        let workers = (0..workers_n)
            .map(|i| {
                let sh = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("ligra-engine-{i}"))
                    .spawn(move || worker_loop(&sh))
                    .expect("spawn engine worker")
            })
            .collect();
        Engine { shared, workers }
    }

    /// Installs an unweighted graph; returns the new epoch.
    pub fn install_graph(&self, g: Arc<Graph>) -> u64 {
        self.shared.store.install_graph(g)
    }

    /// Installs a weighted graph; returns the new epoch.
    pub fn install_weighted(&self, g: Arc<WeightedGraph>) -> u64 {
        self.shared.store.install_weighted(g)
    }

    /// The current snapshot epoch, if a graph is installed.
    pub fn current_epoch(&self) -> Option<u64> {
        self.shared.store.current().map(|s| s.epoch())
    }

    /// Submits a query against the current snapshot. `deadline` (if any,
    /// else the config default) starts counting immediately — time spent
    /// queued is charged against it. Returns a handle; cache hits come
    /// back already `Done`.
    pub fn submit(
        &self,
        query: Query,
        deadline: Option<Duration>,
    ) -> Result<QueryHandle, SubmitError> {
        let sh = &self.shared;
        let snapshot = sh.store.current().ok_or(SubmitError::NoGraph)?;
        let deadline = deadline.or(sh.config.default_deadline);
        let token = match deadline {
            Some(d) => CancelToken::with_timeout(d),
            None => CancelToken::new(),
        };
        let id = sh.next_id.fetch_add(1, Ordering::Relaxed);
        let key = (snapshot.epoch(), query.clone());
        let cached = sh.cache.lock().expect("scheduler lock poisoned").get(&key);

        let job = Arc::new(Job {
            id,
            query,
            snapshot,
            token,
            submitted: Instant::now(),
            state: Mutex::new(JobState {
                status: QueryStatus::Queued,
                result: None,
                error: None,
                span: None,
            }),
            done: Condvar::new(),
        });

        if let Some(result) = cached {
            // Served without touching the queue: terminal immediately.
            let span = QuerySpan {
                id,
                query: job.query.name().to_string(),
                epoch: job.snapshot.epoch(),
                status: QueryStatus::Done,
                cache_hit: true,
                queue_wait_ns: 0,
                run_ns: 0,
                rounds: 0,
                events: 0,
            };
            job.finish(QueryStatus::Done, Some(result), None, span.clone());
            sh.counters.submitted.fetch_add(1, Ordering::Relaxed);
            sh.counters.completed.fetch_add(1, Ordering::Relaxed);
            sh.spans.lock().expect("scheduler lock poisoned").push(span);
            sh.jobs.lock().expect("scheduler lock poisoned").insert(id, Arc::clone(&job));
            return Ok(QueryHandle { job });
        }

        {
            let mut q = sh.queue.lock().expect("scheduler lock poisoned");
            if q.len() >= sh.config.queue_capacity {
                sh.counters.rejected.fetch_add(1, Ordering::Relaxed);
                return Err(SubmitError::QueueFull);
            }
            q.push_back(Arc::clone(&job));
        }
        sh.queue_cv.notify_one();
        sh.counters.submitted.fetch_add(1, Ordering::Relaxed);
        sh.jobs.lock().expect("scheduler lock poisoned").insert(id, Arc::clone(&job));
        Ok(QueryHandle { job })
    }

    /// Looks up a previously submitted query by id.
    pub fn handle(&self, id: u64) -> Option<QueryHandle> {
        self.shared
            .jobs
            .lock()
            .expect("scheduler lock poisoned")
            .get(&id)
            .map(|job| QueryHandle { job: Arc::clone(job) })
    }

    /// Aggregate counters for the `stats` op.
    pub fn stats(&self) -> EngineStats {
        let sh = &self.shared;
        let (cache_hits, cache_misses, cache_len) = {
            let c = sh.cache.lock().expect("scheduler lock poisoned");
            (c.hits(), c.misses(), c.len())
        };
        EngineStats {
            epoch: self.current_epoch(),
            queued: sh.queue.lock().expect("scheduler lock poisoned").len(),
            running: sh.counters.running.load(Ordering::Relaxed),
            submitted: sh.counters.submitted.load(Ordering::Relaxed),
            rejected: sh.counters.rejected.load(Ordering::Relaxed),
            completed: sh.counters.completed.load(Ordering::Relaxed),
            cancelled: sh.counters.cancelled.load(Ordering::Relaxed),
            failed: sh.counters.failed.load(Ordering::Relaxed),
            cache_hits,
            cache_misses,
            cache_len,
        }
    }

    /// All spans recorded so far, submission order.
    pub fn spans(&self) -> Vec<QuerySpan> {
        self.shared.spans.lock().expect("scheduler lock poisoned").clone()
    }

    /// The span of one query, if it has reached a terminal state.
    pub fn span(&self, id: u64) -> Option<QuerySpan> {
        self.handle(id).and_then(|h| h.span())
    }

    /// The configured worker count.
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// The configured admission-queue capacity.
    pub fn queue_capacity(&self) -> usize {
        self.shared.config.queue_capacity
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        self.shared.queue_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(sh: &Shared) {
    loop {
        let job = {
            let mut q = sh.queue.lock().expect("scheduler lock poisoned");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if sh.shutdown.load(Ordering::Acquire) {
                    return;
                }
                q = sh.queue_cv.wait(q).expect("scheduler lock poisoned");
            }
        };
        sh.counters.running.fetch_add(1, Ordering::Relaxed);
        run_job(sh, &job);
    }
}

fn run_job(sh: &Shared, job: &Job) {
    let queue_wait_ns = job.submitted.elapsed().as_nanos() as u64;
    let mut span = QuerySpan {
        id: job.id,
        query: job.query.name().to_string(),
        epoch: job.snapshot.epoch(),
        status: QueryStatus::Running,
        cache_hit: false,
        queue_wait_ns,
        run_ns: 0,
        rounds: 0,
        events: 0,
    };

    // Pre-run check: a deadline can expire (or a cancel arrive) while the
    // query sits in the queue; don't burn a worker on it.
    if job.token.is_cancelled() {
        span.status = QueryStatus::Cancelled;
        sh.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        sh.spans.lock().expect("scheduler lock poisoned").push(span.clone());
        // Gauge before notification: a waiter that observes the terminal
        // status must also observe this query as no longer running.
        sh.counters.running.fetch_sub(1, Ordering::Relaxed);
        job.finish(QueryStatus::Cancelled, None, None, span);
        return;
    }

    job.set_status(QueryStatus::Running);
    let opts = EdgeMapOptions::new().traversal(sh.config.traversal).cancel(&job.token);
    let mut counter = RoundCounter::default();
    let start = Instant::now();
    let outcome = job.query.run(&job.snapshot, opts, &mut counter);
    span.run_ns = start.elapsed().as_nanos() as u64;
    span.rounds = counter.edge_map_rounds;
    span.events = counter.events;

    let (status, result, error) = match outcome {
        Err(msg) => {
            sh.counters.failed.fetch_add(1, Ordering::Relaxed);
            (QueryStatus::Failed, None, Some(msg))
        }
        Ok(_) if job.token.is_cancelled() => {
            // The app drained at a round boundary; its partial state is
            // not a valid answer. Discard, never cache.
            sh.counters.cancelled.fetch_add(1, Ordering::Relaxed);
            (QueryStatus::Cancelled, None, None)
        }
        Ok(out) => {
            let result = Arc::new(out);
            sh.cache
                .lock()
                .expect("scheduler lock poisoned")
                .insert((job.snapshot.epoch(), job.query.clone()), Arc::clone(&result));
            sh.counters.completed.fetch_add(1, Ordering::Relaxed);
            (QueryStatus::Done, Some(result), None)
        }
    };
    span.status = status;
    sh.spans.lock().expect("scheduler lock poisoned").push(span.clone());
    // Gauge before notification (see the pre-run cancel path above).
    sh.counters.running.fetch_sub(1, Ordering::Relaxed);
    job.finish(status, result, error, span);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ligra_graph::generators::rmat::RmatOptions;
    use ligra_graph::generators::{grid3d, rmat};

    fn engine(workers: usize, queue: usize) -> Engine {
        Engine::new(EngineConfig {
            workers,
            queue_capacity: queue,
            cache_capacity: 8,
            default_deadline: None,
            traversal: Traversal::Auto,
        })
    }

    #[test]
    fn submit_before_install_is_rejected() {
        let e = engine(1, 4);
        assert_eq!(e.submit(Query::Cc, None).unwrap_err(), SubmitError::NoGraph);
    }

    #[test]
    fn basic_query_round_trip() {
        let e = engine(2, 8);
        let epoch = e.install_graph(Arc::new(grid3d(6)));
        let h = e.submit(Query::Bfs { source: 0 }, None).unwrap();
        assert_eq!(h.wait(), QueryStatus::Done);
        let span = h.span().unwrap();
        assert_eq!(span.epoch, epoch);
        assert!(!span.cache_hit);
        assert!(span.rounds > 0);
        match h.result().unwrap().as_ref() {
            QueryOutput::Bfs(r) => assert_eq!(r.reached, 216),
            other => panic!("unexpected output {other:?}"),
        }
    }

    #[test]
    fn repeat_query_on_same_epoch_hits_cache() {
        let e = engine(1, 8);
        e.install_graph(Arc::new(grid3d(5)));
        let h1 = e.submit(Query::Bfs { source: 3 }, None).unwrap();
        assert_eq!(h1.wait(), QueryStatus::Done);
        let h2 = e.submit(Query::Bfs { source: 3 }, None).unwrap();
        assert_eq!(h2.wait(), QueryStatus::Done);
        assert!(h2.span().unwrap().cache_hit);
        // Same Arc — not a recompute.
        assert!(Arc::ptr_eq(&h1.result().unwrap(), &h2.result().unwrap()));
        let stats = e.stats();
        assert_eq!(stats.cache_hits, 1);
        // New epoch invalidates.
        e.install_graph(Arc::new(grid3d(5)));
        let h3 = e.submit(Query::Bfs { source: 3 }, None).unwrap();
        assert_eq!(h3.wait(), QueryStatus::Done);
        assert!(!h3.span().unwrap().cache_hit);
    }

    #[test]
    fn zero_deadline_cancels_within_a_round_boundary() {
        let e = engine(1, 8);
        e.install_graph(Arc::new(rmat(&RmatOptions::paper(10))));
        let h = e.submit(Query::PageRank { iters: 1_000_000 }, Some(Duration::ZERO)).unwrap();
        assert_eq!(h.wait(), QueryStatus::Cancelled);
        let span = h.span().unwrap();
        assert_eq!(span.status, QueryStatus::Cancelled);
        // At most one round can slip in between the dequeue pre-check and
        // the first token consultation at a round boundary.
        assert!(span.rounds <= 1, "expected <=1 round before cancel, got {}", span.rounds);
        assert!(h.result().is_none(), "cancelled query must not expose a partial result");
        assert_eq!(e.stats().cancelled, 1);
    }

    #[test]
    fn explicit_cancel_stops_a_long_query() {
        let e = engine(1, 8);
        e.install_graph(Arc::new(rmat(&RmatOptions::paper(11))));
        let h = e.submit(Query::PageRank { iters: 1_000_000 }, None).unwrap();
        // Let it start, then pull the plug.
        std::thread::sleep(Duration::from_millis(30));
        h.cancel();
        let status = h.wait();
        assert_eq!(status, QueryStatus::Cancelled);
        assert!(e.span(h.id()).is_some());
    }

    #[test]
    fn admission_queue_rejects_when_full() {
        let e = engine(1, 1);
        e.install_graph(Arc::new(rmat(&RmatOptions::paper(10))));
        // Saturate: one long query runs, one waits, further submits bounce.
        let _h1 = e.submit(Query::PageRank { iters: 10_000 }, None).unwrap();
        let mut rejected = 0;
        for _ in 0..20 {
            match e.submit(Query::PageRank { iters: 10_001 }, None) {
                Err(SubmitError::QueueFull) => rejected += 1,
                Ok(_) => {}
                Err(e) => panic!("unexpected {e:?}"),
            }
        }
        assert!(rejected > 0, "bounded queue never rejected");
        assert!(e.stats().rejected > 0);
    }

    #[test]
    fn failed_validation_reports_error() {
        let e = engine(1, 4);
        e.install_graph(Arc::new(grid3d(3)));
        let h = e.submit(Query::Bfs { source: 1_000_000 }, None).unwrap();
        assert_eq!(h.wait(), QueryStatus::Failed);
        assert!(h.error().unwrap().contains("out of range"));
        assert_eq!(e.stats().failed, 1);
    }

    #[test]
    fn concurrent_queries_all_complete() {
        let e = engine(4, 64);
        e.install_graph(Arc::new(rmat(&RmatOptions::paper(9))));
        let handles: Vec<_> =
            (0..16).map(|i| e.submit(Query::Bfs { source: i * 7 % 512 }, None).unwrap()).collect();
        for h in &handles {
            assert_eq!(h.wait(), QueryStatus::Done);
        }
        let stats = e.stats();
        assert_eq!(stats.completed, 16);
        assert_eq!(e.spans().len(), 16);
    }
}
