//! LRU result cache keyed on `(graph epoch, query)`.
//!
//! A hit hands back the same `Arc<QueryOutput>` the first run produced,
//! so repeated queries against an unchanged snapshot cost one hash-map
//! probe instead of a traversal. Keying on the epoch makes invalidation
//! implicit: installing a new graph bumps the epoch and every old entry
//! simply stops matching (and ages out of the LRU). Hit/miss counters
//! feed the engine's trace summary.

use crate::query::{Query, QueryOutput};
use std::collections::HashMap;
use std::sync::Arc;

/// Cache key: the snapshot epoch plus the full typed query.
pub type CacheKey = (u64, Query);

struct Entry {
    value: Arc<QueryOutput>,
    last_used: u64,
}

/// Fixed-capacity LRU map. Not internally synchronized — the engine wraps
/// it in a `Mutex`, which also keeps the hit/miss counters consistent
/// with the probes that produced them.
pub struct ResultCache {
    capacity: usize,
    map: HashMap<CacheKey, Entry>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl ResultCache {
    /// A cache holding at most `capacity` results. Capacity 0 disables
    /// caching (every probe is a miss, inserts are dropped).
    pub fn new(capacity: usize) -> Self {
        ResultCache { capacity, map: HashMap::new(), tick: 0, hits: 0, misses: 0, evictions: 0 }
    }

    /// Probes for a cached result, counting a hit or a miss.
    pub fn get(&mut self, key: &CacheKey) -> Option<Arc<QueryOutput>> {
        self.tick += 1;
        let tick = self.tick;
        match self.map.get_mut(key) {
            Some(e) => {
                e.last_used = tick;
                self.hits += 1;
                Some(Arc::clone(&e.value))
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Inserts a result, evicting the least-recently-used entry when at
    /// capacity.
    pub fn insert(&mut self, key: CacheKey, value: Arc<QueryOutput>) {
        if self.capacity == 0 {
            return;
        }
        self.tick += 1;
        if self.map.len() >= self.capacity && !self.map.contains_key(&key) {
            if let Some(oldest) =
                self.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            {
                self.map.remove(&oldest);
                self.evictions += 1;
            }
        }
        self.map.insert(key, Entry { value, last_used: self.tick });
    }

    /// Entries currently held.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Probes that found an entry.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probes that found nothing.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Entries pushed out by LRU capacity pressure (not epoch aging —
    /// stale-epoch entries leave through this same LRU path, since an
    /// epoch bump makes them unprobed and therefore oldest).
    pub fn evictions(&self) -> u64 {
        self.evictions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ligra_apps::CcResult;

    fn out(rounds: usize) -> Arc<QueryOutput> {
        Arc::new(QueryOutput::Cc(CcResult { label: vec![], rounds }))
    }

    #[test]
    fn hit_returns_same_arc_and_counts() {
        let mut c = ResultCache::new(4);
        let key = (1, Query::Cc);
        assert!(c.get(&key).is_none());
        let v = out(3);
        c.insert(key.clone(), Arc::clone(&v));
        let got = c.get(&key).unwrap();
        assert!(Arc::ptr_eq(&got, &v));
        assert_eq!((c.hits(), c.misses()), (1, 1));
    }

    #[test]
    fn epoch_changes_miss() {
        let mut c = ResultCache::new(4);
        c.insert((1, Query::Cc), out(3));
        assert!(c.get(&(2, Query::Cc)).is_none());
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = ResultCache::new(2);
        let a = (1, Query::Bfs { source: 0 });
        let b = (1, Query::Bfs { source: 1 });
        let d = (1, Query::Bfs { source: 2 });
        c.insert(a.clone(), out(1));
        c.insert(b.clone(), out(2));
        let _ = c.get(&a); // a is now fresher than b
        c.insert(d.clone(), out(3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
        assert!(c.get(&a).is_some());
        assert!(c.get(&b).is_none(), "b was LRU and should have been evicted");
        assert!(c.get(&d).is_some());
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.insert((1, Query::Cc), out(1));
        assert!(c.get(&(1, Query::Cc)).is_none());
        assert!(c.is_empty());
    }
}
