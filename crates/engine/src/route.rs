//! `ligra-route`: library logic for the replicated serving router.
//!
//! A [`Router`] fronts N `ligra-serve` backends over the flat-JSONL
//! wire protocol ([`crate::wire`]) and turns one fallible process into
//! a degradable fleet (DESIGN.md §16):
//!
//! * **Backend state machine** — every replica is Healthy, Degraded, or
//!   Down ([`BackendState`]), driven by periodic health probes (the
//!   `stats` op under a read deadline) and by in-band signals from live
//!   traffic: connect errors, timeouts, torn response lines, and
//!   `"transient":true` responses carrying `retry_after_ms` hints.
//! * **Read routing** — idempotent ops (`submit`, `poll`, `wait`,
//!   `span`, `stats`, `trace`, …) go to the live replica with the
//!   fewest outstanding requests, under a bounded per-backend in-flight
//!   cap. When every replica is saturated or down the router sheds with
//!   a `retry_after_ms` hint instead of queueing unboundedly; when a
//!   backend dies mid-request the read is retried on a different
//!   replica (a *failover*), including re-executing the original
//!   `submit` for a `wait`/`poll` whose backend vanished.
//! * **Write fan-out** — `load`/`gen`/`mutate`/`compact` are serialized
//!   through a single writer thread, appended to a bounded router-side
//!   journal, and forwarded to every live replica in order. A replica
//!   that misses a write (down, timed out, shedding) keeps its journal
//!   cursor behind the head; the next successful probe marks it
//!   Degraded and replays the missed entries, restoring epoch parity.
//!   A replica whose epoch diverges at an equal cursor (local installs
//!   the router never saw) is held Degraded for operator attention —
//!   replay cannot repair a fork, only a lag.
//! * **Chaos hooks** — the `route.forward` fault point fires inside
//!   [`Router`]'s forward path under `--fault`/`--fault-seed`
//!   (`fault-inject` builds), so the chaos suite can error/lag/panic
//!   the router→backend hop deterministically and assert failover.
//!
//! Locking discipline: the router's mutexes (`route.backend`,
//! `route.journal`, `route.idmap`, `route.writer`) are held only for
//! field reads and queue surgery — never across socket I/O or sleeps.
//! Ordering of replicated writes comes from the single writer thread,
//! not from holding a lock across the fan-out.

use crate::backoff::{retry_after_ms, Backoff};
use crate::lockdep::tracked_lock;
use crate::metrics::{Counter, Gauge, Histogram};
use crate::wire::{error_response, JsonObj, Request};
use crate::FaultPlan;
use std::collections::HashMap;
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Liveness of one backend replica, as the router currently believes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendState {
    /// Probing and serving normally.
    Healthy,
    /// Reachable but impaired: behind on writes, asked for backoff,
    /// failed recently, or diverged. Used as a fallback for reads.
    Degraded,
    /// Unreachable; skipped by routing until a probe succeeds.
    Down,
}

impl BackendState {
    /// Stable lowercase name (`route-stats`, logs).
    pub fn name(self) -> &'static str {
        match self {
            BackendState::Healthy => "healthy",
            BackendState::Degraded => "degraded",
            BackendState::Down => "down",
        }
    }

    /// Gauge encoding for the `ligra_route_backend_state` family:
    /// 0 = down, 1 = degraded, 2 = healthy.
    pub fn as_gauge(self) -> u64 {
        match self {
            BackendState::Down => 0,
            BackendState::Degraded => 1,
            BackendState::Healthy => 2,
        }
    }
}

/// Router tuning knobs; every field has a serving-ready default.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Backend addresses (`host:port`), one per replica, in id order.
    pub backends: Vec<String>,
    /// Per-backend in-flight request cap; excess reads shed or fail
    /// over instead of queueing on a struggling replica.
    pub max_inflight: usize,
    /// How often the prober sweeps the fleet.
    pub probe_interval: Duration,
    /// Connect + read deadline for one health probe; a backend that
    /// accepts TCP but never answers is caught here.
    pub probe_deadline: Duration,
    /// Read deadline for one forwarded client request.
    pub request_deadline: Duration,
    /// Bounded write-journal capacity (entries). A replica that falls
    /// further behind than this cannot be replayed and stays Degraded.
    pub journal_capacity: usize,
    /// Consecutive forward/probe failures before Down (the first
    /// failure already demotes to Degraded).
    pub down_after: u32,
    /// Transient-response / failover retry budget per client request.
    pub retries: u32,
    /// Deterministic fault plan armed at `route.forward`
    /// (`fault-inject` builds only).
    pub fault: Option<Arc<FaultPlan>>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            backends: Vec::new(),
            max_inflight: 32,
            probe_interval: Duration::from_millis(200),
            probe_deadline: Duration::from_millis(500),
            request_deadline: Duration::from_secs(30),
            journal_capacity: 4096,
            down_after: 2,
            retries: 3,
            fault: None,
        }
    }
}

/// Per-backend router metrics (`backend` label = replica index).
pub struct BackendMetrics {
    /// Current [`BackendState::as_gauge`] encoding.
    pub state: Gauge,
    /// Requests currently checked out against this replica.
    pub outstanding: Gauge,
    /// Requests forwarded (successful exchanges).
    pub forwarded: Counter,
    /// Forward failures (connect/timeout/torn/injected).
    pub errors: Counter,
    /// Round-trip latency of successful forwards, nanoseconds.
    pub request_ns: Histogram,
}

/// Router-level metrics, rendered by
/// [`crate::metrics::prometheus::render_router`].
pub struct RouterMetrics {
    /// Client request lines the router parsed.
    pub requests: Counter,
    /// Requests shed because every replica was saturated or down.
    pub sheds: Counter,
    /// Transient backend responses retried on another replica.
    pub retries: Counter,
    /// Reads rerouted after a backend died mid-request.
    pub failovers: Counter,
    /// Health probes attempted.
    pub probes: Counter,
    /// Health probes failed.
    pub probe_failures: Counter,
    /// Entries resident in the write journal.
    pub journal_entries: Gauge,
    /// Journal entries replayed to lagging replicas.
    pub journal_replayed: Counter,
    /// Client request lines rejected as malformed.
    pub wire_malformed: Counter,
    /// Per-replica instruments, indexed by backend id.
    pub backends: Vec<BackendMetrics>,
}

impl RouterMetrics {
    /// Fresh zeroed instruments for `n` backends (one
    /// [`BackendMetrics`] per replica, in id order).
    pub fn with_backends(n: usize) -> Self {
        RouterMetrics {
            requests: Counter::new(),
            sheds: Counter::new(),
            retries: Counter::new(),
            failovers: Counter::new(),
            probes: Counter::new(),
            probe_failures: Counter::new(),
            journal_entries: Gauge::new(),
            journal_replayed: Counter::new(),
            wire_malformed: Counter::new(),
            backends: (0..n)
                .map(|_| BackendMetrics {
                    state: Gauge::new(),
                    outstanding: Gauge::new(),
                    forwarded: Counter::new(),
                    errors: Counter::new(),
                    request_ns: Histogram::new(),
                })
                .collect(),
        }
    }
}

/// One pooled backend connection: a buffered reader over the stream;
/// writes go through the same stream via `get_mut`.
struct Conn {
    reader: BufReader<TcpStream>,
}

struct BackendInner {
    state: BackendState,
    outstanding: usize,
    idle: Vec<Conn>,
    /// Last epoch this replica reported (write response or probe).
    epoch: u64,
    /// Journal cursor: highest journal seq this replica has applied.
    applied_seq: u64,
    /// Consecutive failures (forwards + probes); reset on success.
    failures: u32,
    /// Replica-requested backoff: skipped by routing until then.
    retry_at: Option<Instant>,
    /// Next probe attempt (reconnect backoff while failing).
    next_probe_at: Instant,
    /// The replica fell behind more than the journal holds, or its
    /// epoch forked from the fleet; replay cannot repair it.
    unrecoverable: Option<&'static str>,
}

struct Backend {
    id: usize,
    addr: String,
    inner: Mutex<BackendInner>,
}

impl Backend {
    fn new(id: usize, addr: String) -> Backend {
        Backend {
            id,
            addr,
            inner: Mutex::new(BackendInner {
                state: BackendState::Healthy,
                outstanding: 0,
                idle: Vec::new(),
                epoch: 0,
                applied_seq: 0,
                failures: 0,
                retry_at: None,
                next_probe_at: Instant::now(),
                unrecoverable: None,
            }),
        }
    }
}

struct JournalEntry {
    seq: u64,
    line: String,
}

struct Journal {
    entries: VecDeque<JournalEntry>,
    /// Seq of the last appended entry (0 = nothing written yet).
    head: u64,
}

/// One tracked client submit: which replica owns the backend-local id,
/// and the original request line so the read can be re-executed on a
/// different replica if that backend dies before `wait` returns.
#[derive(Clone)]
struct IdEntry {
    backend: usize,
    remote_id: u64,
    submit_line: String,
}

struct IdMap {
    entries: HashMap<u64, IdEntry>,
    order: VecDeque<u64>,
}

/// Retained submit mappings; older entries are evicted FIFO (a client
/// polling an evicted id gets `unknown id`, same as on the backend
/// once its handle retires).
const ID_MAP_CAPACITY: usize = 8192;

enum WriteJob {
    Client { line: String, reply: mpsc::Sender<String> },
    Replay { backend: usize },
}

#[cfg_attr(not(feature = "fault-inject"), allow(dead_code))]
enum ForwardError {
    /// Down, asked-for-backoff, or over the in-flight cap — the
    /// request never reached the replica.
    NotSelectable,
    /// Transport-level failure mid-request: connect error, timeout,
    /// torn response line. The replica is penalized.
    Io(String),
    /// The `route.forward` fault point fired (chaos builds).
    Injected(String),
}

/// A JSONL fan-out router over replicated `ligra-serve` backends.
///
/// Construct with [`Router::start`]; share via `Arc`. Connection
/// handler threads call [`Router::handle_line`] per request line. The
/// router owns two background threads — a health prober and the write
/// serializer — both of which stop when the last external `Arc` drops
/// or [`Router::begin_shutdown`] runs.
pub struct Router {
    cfg: RouterConfig,
    backends: Vec<Arc<Backend>>,
    journal: Mutex<Journal>,
    idmap: Mutex<IdMap>,
    writer: Mutex<mpsc::Sender<WriteJob>>,
    metrics: Arc<RouterMetrics>,
    shutting_down: AtomicBool,
    next_client_id: AtomicU64,
    /// Round-robin cursor breaking least-outstanding ties in [`Router::pick`].
    rr: AtomicU64,
}

impl Router {
    /// Builds the router and spawns its prober + writer threads.
    /// `cfg.backends` must be non-empty.
    pub fn start(cfg: RouterConfig) -> Result<Arc<Router>, String> {
        if cfg.backends.is_empty() {
            return Err("router needs at least one --backend".to_string());
        }
        let backends: Vec<Arc<Backend>> = cfg
            .backends
            .iter()
            .enumerate()
            .map(|(i, a)| Arc::new(Backend::new(i, a.clone())))
            .collect();
        let metrics = Arc::new(RouterMetrics::with_backends(backends.len()));
        for bm in &metrics.backends {
            bm.state.set(BackendState::Healthy.as_gauge());
        }
        let (tx, rx) = mpsc::channel();
        let router = Arc::new(Router {
            cfg,
            backends,
            journal: Mutex::new(Journal { entries: VecDeque::new(), head: 0 }),
            idmap: Mutex::new(IdMap { entries: HashMap::new(), order: VecDeque::new() }),
            writer: Mutex::new(tx),
            metrics,
            shutting_down: AtomicBool::new(false),
            next_client_id: AtomicU64::new(0),
            rr: AtomicU64::new(0),
        });

        let weak = Arc::downgrade(&router);
        std::thread::spawn(move || {
            // The writer thread serializes every replicated write: the
            // channel is the ordering, so no lock is ever held across
            // the fan-out I/O.
            for job in rx {
                let Some(r) = weak.upgrade() else { break };
                match job {
                    WriteJob::Client { line, reply } => {
                        let resp = r.fan_out_write(&line);
                        let _ = reply.send(resp);
                    }
                    WriteJob::Replay { backend } => r.replay(backend),
                }
                if r.shutting_down.load(Ordering::Acquire) {
                    break;
                }
            }
        });

        let weak = Arc::downgrade(&router);
        let interval = router.cfg.probe_interval;
        std::thread::spawn(move || loop {
            let Some(r) = weak.upgrade() else { break };
            if r.shutting_down.load(Ordering::Acquire) {
                break;
            }
            r.probe_round();
            drop(r);
            std::thread::sleep(interval);
        });
        Ok(router)
    }

    /// The router's metric instruments (scraped by `--metrics-addr`).
    pub fn metrics(&self) -> &RouterMetrics {
        &self.metrics
    }

    /// Number of configured backend replicas.
    pub fn num_backends(&self) -> usize {
        self.backends.len()
    }

    /// Marks the router shutting down: probes stop, the writer drains
    /// its queue and exits, new routing still works while the binary's
    /// drain loop waits for outstanding requests to finish.
    pub fn begin_shutdown(&self) {
        self.shutting_down.store(true, Ordering::Release);
    }

    /// Requests currently checked out across all replicas — the
    /// drain-on-shutdown quiescence signal.
    pub fn outstanding_total(&self) -> u64 {
        self.metrics.backends.iter().map(|b| b.outstanding.get()).sum()
    }

    /// Handles one client request line; the bool is "keep serving this
    /// connection" (false only after an acknowledged `shutdown`).
    pub fn handle_line(&self, line: &str) -> (String, bool) {
        let req = match Request::parse(line) {
            Ok(r) => r,
            Err(e) => {
                self.metrics.wire_malformed.incr();
                return (error_response(&e), true);
            }
        };
        let op = match req.str("op") {
            Ok(op) => op,
            Err(e) => {
                self.metrics.wire_malformed.incr();
                return (error_response(&e), true);
            }
        };
        self.metrics.requests.incr();
        let resp = match op {
            "ping" => JsonObj::new().bool("ok", true).str("pong", "ligra-route").finish(),
            "shutdown" => {
                self.begin_shutdown();
                return (
                    JsonObj::new().bool("ok", true).str("status", "shutting-down").finish(),
                    false,
                );
            }
            "route-stats" | "route_stats" => self.route_stats_response(),
            "graph-stats" | "graph_stats" => self.graph_stats_response(),
            "load" | "gen" | "mutate" | "compact" => self.submit_write(line),
            "submit" => self.route_submit(line),
            "poll" | "wait" | "cancel" | "span" => self.route_by_id(op, &req),
            "stats" | "metrics" | "trace" => self.route_read(line, &[]).0,
            other => error_response(&format!("unknown op {other:?}")),
        };
        (resp, true)
    }

    // ---- forwarding ------------------------------------------------

    /// The `route.forward` chaos hook: an injected error or contained
    /// panic is reported as a forward failure (so the router fails
    /// over exactly as it would for a dead backend); injected latency
    /// simply delays the hop.
    #[cfg(feature = "fault-inject")]
    fn fault_check(&self) -> Result<(), ForwardError> {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let Some(plan) = &self.cfg.fault else { return Ok(()) };
        match catch_unwind(AssertUnwindSafe(|| plan.check(ligra::FaultPoint::RouteForward))) {
            Ok(Ok(())) => Ok(()),
            Ok(Err(e)) => Err(ForwardError::Injected(e.to_string())),
            Err(payload) => Err(ForwardError::Injected(
                crate::error::classify_panic(payload.as_ref()).to_string(),
            )),
        }
    }

    #[cfg(not(feature = "fault-inject"))]
    fn fault_check(&self) -> Result<(), ForwardError> {
        Ok(())
    }

    /// One request/response exchange with `backend`, under admission
    /// and the read deadline. On success the connection returns to the
    /// idle pool; any failure penalizes the replica's state machine.
    fn forward(
        &self,
        backend: &Backend,
        line: &str,
        deadline: Duration,
    ) -> Result<String, ForwardError> {
        self.fault_check().inspect_err(|_| self.record_failure(backend, "injected fault"))?;
        let bm = &self.metrics.backends[backend.id];
        let pooled = {
            let mut inner = tracked_lock(&backend.inner, "route.backend");
            if inner.state == BackendState::Down
                || inner.retry_at.is_some_and(|t| t > Instant::now())
                || inner.outstanding >= self.cfg.max_inflight
            {
                return Err(ForwardError::NotSelectable);
            }
            inner.outstanding += 1;
            bm.outstanding.set(inner.outstanding as u64);
            inner.idle.pop()
        };
        let started = Instant::now();
        let conn = match pooled {
            Some(c) => Ok(c),
            None => self.dial(&backend.addr, deadline),
        };
        let result =
            conn.and_then(|mut c| Self::exchange(&mut c, line, deadline).map(|resp| (c, resp)));
        match result {
            Ok((conn, resp)) => {
                bm.forwarded.incr();
                bm.request_ns.record(started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64);
                self.record_success(backend, conn, &resp);
                Ok(resp)
            }
            Err(e) => {
                let msg = match &e {
                    ForwardError::Io(m) | ForwardError::Injected(m) => m.clone(),
                    ForwardError::NotSelectable => String::new(),
                };
                self.release_and_penalize(backend, &msg);
                Err(e)
            }
        }
    }

    /// Dials a fresh connection with `deadline` as the connect timeout.
    fn dial(&self, addr: &str, deadline: Duration) -> Result<Conn, ForwardError> {
        let sockaddr: SocketAddr = addr
            .to_socket_addrs()
            .map_err(|e| ForwardError::Io(format!("resolve {addr}: {e}")))?
            .next()
            .ok_or_else(|| ForwardError::Io(format!("resolve {addr}: no address")))?;
        let stream = TcpStream::connect_timeout(&sockaddr, deadline)
            .map_err(|e| ForwardError::Io(format!("connect {addr}: {e}")))?;
        // Request/response lines must not sit in Nagle's buffer waiting
        // for a delayed ACK: each forward is one small write.
        stream
            .set_nodelay(true)
            .map_err(|e| ForwardError::Io(format!("set nodelay {addr}: {e}")))?;
        Ok(Conn { reader: BufReader::new(stream) })
    }

    /// Writes one request line and reads one response line under the
    /// read deadline. A torn line (EOF before the newline) or timeout
    /// is a transport failure — the caller treats the replica as dead
    /// for this request.
    fn exchange(conn: &mut Conn, line: &str, deadline: Duration) -> Result<String, ForwardError> {
        let stream = conn.reader.get_mut();
        stream
            .set_read_timeout(Some(deadline))
            .and_then(|()| stream.set_write_timeout(Some(deadline)))
            .map_err(|e| ForwardError::Io(format!("set deadline: {e}")))?;
        // One write for line + newline: split writes become two TCP
        // segments, and Nagle would hold the second for the ACK.
        let mut framed = String::with_capacity(line.len() + 1);
        framed.push_str(line);
        framed.push('\n');
        stream
            .write_all(framed.as_bytes())
            .and_then(|()| stream.flush())
            .map_err(|e| ForwardError::Io(format!("send: {e}")))?;
        let mut resp = String::new();
        match conn.reader.read_line(&mut resp) {
            Err(e) => Err(ForwardError::Io(format!("read response: {e}"))),
            Ok(0) => Err(ForwardError::Io("backend closed the connection".to_string())),
            Ok(_) if !resp.ends_with('\n') => {
                Err(ForwardError::Io("response torn mid-line".to_string()))
            }
            Ok(_) => {
                resp.truncate(resp.trim_end().len());
                Ok(resp)
            }
        }
    }

    /// Books a successful exchange: the connection returns to the idle
    /// pool, failures reset, and a `"transient":true` response sets
    /// the replica's requested backoff window.
    fn record_success(&self, backend: &Backend, conn: Conn, resp: &str) {
        let bm = &self.metrics.backends[backend.id];
        let mut inner = tracked_lock(&backend.inner, "route.backend");
        inner.outstanding = inner.outstanding.saturating_sub(1);
        bm.outstanding.set(inner.outstanding as u64);
        inner.failures = 0;
        if inner.idle.len() < self.cfg.max_inflight {
            inner.idle.push(conn);
        }
        if is_transient(resp) {
            let hint = retry_after_ms(resp).unwrap_or(50);
            inner.retry_at = Some(Instant::now() + Duration::from_millis(hint));
            if inner.state == BackendState::Healthy {
                inner.state = BackendState::Degraded;
                bm.state.set(inner.state.as_gauge());
            }
        }
    }

    /// Books a failed exchange: the slot is released, the connection
    /// (if any was checked out) is dropped, and the replica is demoted
    /// Degraded → Down by the consecutive-failure threshold.
    fn release_and_penalize(&self, backend: &Backend, _why: &str) {
        let bm = &self.metrics.backends[backend.id];
        bm.errors.incr();
        let mut inner = tracked_lock(&backend.inner, "route.backend");
        inner.outstanding = inner.outstanding.saturating_sub(1);
        bm.outstanding.set(inner.outstanding as u64);
        Self::penalize_locked(&self.cfg, &mut inner, bm);
    }

    /// Failure path shared by forwards and probes (caller holds the
    /// backend lock). Dead replicas also lose their idle pool — those
    /// sockets are almost certainly dead too.
    fn penalize_locked(cfg: &RouterConfig, inner: &mut BackendInner, bm: &BackendMetrics) {
        inner.failures = inner.failures.saturating_add(1);
        inner.state = if inner.failures >= cfg.down_after {
            BackendState::Down
        } else {
            BackendState::Degraded
        };
        if inner.state == BackendState::Down {
            inner.idle.clear();
        }
        bm.state.set(inner.state.as_gauge());
        // Reconnect probing backs off with the shared jittered
        // schedule instead of hammering a dead address every sweep.
        let bo = Backoff {
            base_ms: cfg.probe_interval.as_millis().max(1) as u64,
            cap_ms: 2_000,
            salt: 0x10_07,
        };
        inner.next_probe_at = Instant::now() + bo.delay(inner.failures.saturating_sub(1));
    }

    /// Like [`Router::record_failure`] but for failures observed
    /// without a checked-out slot (probe failures).
    fn record_failure(&self, backend: &Backend, _why: &str) {
        let bm = &self.metrics.backends[backend.id];
        bm.errors.incr();
        let mut inner = tracked_lock(&backend.inner, "route.backend");
        Self::penalize_locked(&self.cfg, &mut inner, bm);
    }

    // ---- read routing ----------------------------------------------

    /// Least-outstanding selection among selectable replicas, Healthy
    /// preferred over Degraded, `exclude` (already-tried ids) skipped.
    /// Ties rotate (the scan starts at a round-robin cursor), so equal
    /// load spreads across the fleet instead of pinning replica 0.
    fn pick(&self, exclude: &[usize]) -> Option<Arc<Backend>> {
        let now = Instant::now();
        let n = self.backends.len();
        let start = self.rr.fetch_add(1, Ordering::Relaxed) as usize % n;
        let mut best: Option<(u64, Arc<Backend>)> = None;
        for k in 0..n {
            let b = &self.backends[(start + k) % n];
            if exclude.contains(&b.id) {
                continue;
            }
            let score = {
                let inner = tracked_lock(&b.inner, "route.backend");
                if inner.state == BackendState::Down
                    || inner.retry_at.is_some_and(|t| t > now)
                    || inner.outstanding >= self.cfg.max_inflight
                {
                    continue;
                }
                // Degraded replicas only win over Healthy ones when the
                // healthy tier is saturated: state dominates, load breaks
                // ties.
                let tier = match inner.state {
                    BackendState::Healthy => 0u64,
                    _ => 1u64,
                };
                tier * (self.cfg.max_inflight as u64 + 1) + inner.outstanding as u64
            };
            if best.as_ref().is_none_or(|(s, _)| score < *s) {
                best = Some((score, Arc::clone(b)));
            }
        }
        best.map(|(_, b)| b)
    }

    /// The shed response when no replica is selectable: transient,
    /// with the earliest retry horizon the router knows.
    fn shed_response(&self) -> String {
        self.metrics.sheds.incr();
        let now = Instant::now();
        let mut hint_ms: u64 = 50;
        for b in &self.backends {
            let inner = tracked_lock(&b.inner, "route.backend");
            if let Some(t) = inner.retry_at {
                let ms = t.saturating_duration_since(now).as_millis() as u64;
                hint_ms = hint_ms.max(ms.min(2_000));
            }
        }
        JsonObj::new()
            .bool("ok", false)
            .str("error", "all replicas saturated or down")
            .bool("transient", true)
            .u64("retry_after_ms", hint_ms)
            .finish()
    }

    /// Routes one idempotent read, failing over across replicas on
    /// transport errors and honoring transient responses with the
    /// shared backoff schedule. Returns the response and the replica
    /// that produced it (None for router-generated sheds/errors).
    fn route_read(&self, line: &str, exclude: &[usize]) -> (String, Option<usize>) {
        let salt = self.next_client_id.load(Ordering::Relaxed);
        let bo = Backoff::serve_client(salt);
        let mut tried: Vec<usize> = exclude.to_vec();
        let mut attempt = 0u32;
        let mut had_failover_candidate = false;
        loop {
            let Some(b) = self.pick(&tried) else {
                // Every replica tried or unselectable. One more pass is
                // allowed after a backoff if the budget remains and the
                // exhaustion came from failures rather than saturation.
                if attempt < self.cfg.retries && tried.len() > exclude.len() {
                    attempt += 1;
                    tried.truncate(exclude.len());
                    std::thread::sleep(bo.delay(attempt).min(Duration::from_millis(250)));
                    continue;
                }
                if had_failover_candidate {
                    return (
                        JsonObj::new()
                            .bool("ok", false)
                            .str("error", "no replica could serve the request")
                            .bool("transient", true)
                            .finish(),
                        None,
                    );
                }
                return (self.shed_response(), None);
            };
            match self.forward(&b, line, self.cfg.request_deadline) {
                Ok(resp) if is_transient(&resp) && attempt < self.cfg.retries => {
                    // The replica shed us; try a sibling after the
                    // hinted (or computed) delay.
                    self.metrics.retries.incr();
                    let d = bo.delay_with_hint(attempt, retry_after_ms(&resp));
                    attempt += 1;
                    tried.push(b.id);
                    std::thread::sleep(d.min(Duration::from_millis(250)));
                }
                Ok(resp) => return (resp, Some(b.id)),
                Err(ForwardError::NotSelectable) => {
                    tried.push(b.id);
                }
                Err(ForwardError::Io(_)) | Err(ForwardError::Injected(_)) => {
                    // Mid-request death: the read is idempotent, so it
                    // is retried on a different replica — a failover.
                    had_failover_candidate = true;
                    self.metrics.failovers.incr();
                    tried.push(b.id);
                }
            }
        }
    }

    /// Routes a `submit`: forwards as an idempotent read, then maps
    /// the backend-local id to a router-scoped one so later
    /// `poll`/`wait`/`cancel`/`span` ops can find (or re-execute) it.
    fn route_submit(&self, line: &str) -> String {
        let (resp, backend) = self.route_read(line, &[]);
        let (Some(backend), Some(remote_id)) = (backend, extract_u64(&resp, "id")) else {
            return resp;
        };
        let router_id = self.next_client_id.fetch_add(1, Ordering::Relaxed) + 1;
        {
            let mut map = tracked_lock(&self.idmap, "route.idmap");
            if map.order.len() >= ID_MAP_CAPACITY {
                if let Some(old) = map.order.pop_front() {
                    map.entries.remove(&old);
                }
            }
            map.order.push_back(router_id);
            map.entries
                .insert(router_id, IdEntry { backend, remote_id, submit_line: line.to_string() });
        }
        rewrite_u64(&resp, "id", router_id)
    }

    /// Routes an id-addressed op to the replica owning that submit.
    /// If that replica died, `poll`/`wait` re-execute the original
    /// submit on a sibling (idempotent-read failover) and continue
    /// there; `cancel` is reported lost.
    fn route_by_id(&self, op: &str, req: &Request) -> String {
        let router_id = match req.u64_or("id", 0) {
            Ok(id) => id,
            Err(e) => return error_response(&e),
        };
        let entry = {
            let map = tracked_lock(&self.idmap, "route.idmap");
            map.entries.get(&router_id).cloned()
        };
        let Some(mut entry) = entry else {
            return error_response(&format!("unknown id {router_id}"));
        };
        let fwd = JsonObj::new().str("op", op).u64("id", entry.remote_id).finish();
        let first = self.forward(&self.backends[entry.backend], &fwd, self.cfg.request_deadline);
        match first {
            Ok(resp) => rewrite_u64(&resp, "id", router_id),
            Err(_) if matches!(op, "poll" | "wait") => {
                // The owning replica died mid-request. Re-execute the
                // stored submit elsewhere and repoint the mapping.
                self.metrics.failovers.incr();
                let (resub, new_backend) = self.route_read(&entry.submit_line, &[entry.backend]);
                let (Some(nb), Some(new_remote)) = (new_backend, extract_u64(&resub, "id")) else {
                    return JsonObj::new()
                        .bool("ok", false)
                        .str("error", "backend died mid-request and no replica could take over")
                        .bool("transient", true)
                        .finish();
                };
                entry.backend = nb;
                entry.remote_id = new_remote;
                {
                    let mut map = tracked_lock(&self.idmap, "route.idmap");
                    map.entries.insert(router_id, entry.clone());
                }
                let fwd = JsonObj::new().str("op", op).u64("id", new_remote).finish();
                match self.forward(&self.backends[nb], &fwd, self.cfg.request_deadline) {
                    Ok(resp) => rewrite_u64(&resp, "id", router_id),
                    Err(_) => JsonObj::new()
                        .bool("ok", false)
                        .str("error", "failover replica also failed")
                        .bool("transient", true)
                        .finish(),
                }
            }
            Err(_) => JsonObj::new()
                .bool("ok", false)
                .str("error", "backend unavailable for this id")
                .bool("transient", true)
                .finish(),
        }
    }

    // ---- write path ------------------------------------------------

    /// Hands a write to the serializer thread and waits for the
    /// fanned-out result.
    fn submit_write(&self, line: &str) -> String {
        let (reply_tx, reply_rx) = mpsc::channel();
        let tx = {
            let guard = tracked_lock(&self.writer, "route.writer");
            guard.clone()
        };
        if tx.send(WriteJob::Client { line: line.to_string(), reply: reply_tx }).is_err() {
            return error_response("router write path is shut down");
        }
        reply_rx.recv().unwrap_or_else(|_| error_response("router write path is shut down"))
    }

    /// Writer-thread body for one replicated write: journal it, fan it
    /// out to every selectable replica in id order, reconcile epochs,
    /// and aggregate the outcome. Replicas that miss the write keep
    /// their cursor behind and are repaired by probe-triggered replay.
    fn fan_out_write(&self, line: &str) -> String {
        let (seq, line) = {
            let mut j = tracked_lock(&self.journal, "route.journal");
            let seq = j.head + 1;
            j.head = seq;
            // Tag the write with its journal seq (`rseq`): backends
            // dedup on it, which makes replication and replay
            // exactly-once per replica — a lagged replica that applied
            // a write the router recorded as missed skips the replayed
            // copy instead of double-applying and forking its epoch.
            let mut tagged = line.trim_end().to_string();
            if tagged.ends_with('}') {
                tagged.pop();
                tagged.push_str(&format!(",\"rseq\":{seq}}}"));
            }
            j.entries.push_back(JournalEntry { seq, line: tagged.clone() });
            while j.entries.len() > self.cfg.journal_capacity {
                j.entries.pop_front();
            }
            self.metrics.journal_entries.set(j.entries.len() as u64);
            (seq, tagged)
        };
        let line = line.as_str();
        let mut first_ok: Option<String> = None;
        let mut ok_count = 0usize;
        let mut missed = 0usize;
        let mut rejected: Option<String> = None;
        let mut any_transient = false;
        for b in &self.backends {
            match self.forward_write(b, line, seq) {
                WriteOutcome::Applied(resp) => {
                    ok_count += 1;
                    if first_ok.is_none() {
                        first_ok = Some(resp);
                    }
                }
                WriteOutcome::Missed { transient } => {
                    missed += 1;
                    any_transient |= transient;
                }
                WriteOutcome::Rejected(resp) => {
                    // The batch itself is invalid; every replica will
                    // refuse it identically.
                    if rejected.is_none() {
                        rejected = Some(resp);
                    }
                }
            }
        }
        if ok_count == 0 {
            // Nothing applied anywhere: retract the journal entry so a
            // client retry gets a fresh seq and replay never applies a
            // write the client was told failed.
            let mut j = tracked_lock(&self.journal, "route.journal");
            if j.entries.back().is_some_and(|e| e.seq == seq) {
                j.entries.pop_back();
                j.head = seq - 1;
            }
            self.metrics.journal_entries.set(j.entries.len() as u64);
            drop(j);
            if let Some(resp) = rejected {
                return resp;
            }
            return JsonObj::new()
                .bool("ok", false)
                .str("error", "write reached no replica")
                .bool("transient", any_transient || missed > 0)
                .finish();
        }
        let base = first_ok.unwrap_or_else(|| JsonObj::new().bool("ok", true).finish());
        // Augment the first replica's response with fleet accounting —
        // string surgery keeps the object flat without re-parsing.
        let mut out = base;
        if out.ends_with('}') {
            out.pop();
            out.push_str(&format!(
                ",\"seq\":{seq},\"replicas_ok\":{ok_count},\"replicas_missed\":{missed}}}"
            ));
        }
        out
    }

    /// Forwards one journaled write to one replica and updates its
    /// cursor/epoch on success.
    fn forward_write(&self, b: &Arc<Backend>, line: &str, seq: u64) -> WriteOutcome {
        {
            let inner = tracked_lock(&b.inner, "route.backend");
            if inner.state == BackendState::Down {
                return WriteOutcome::Missed { transient: true };
            }
        }
        match self.forward(b, line, self.cfg.request_deadline) {
            Err(_) => WriteOutcome::Missed { transient: true },
            Ok(resp) if is_transient(&resp) => WriteOutcome::Missed { transient: true },
            Ok(resp) if resp.contains("\"ok\":false") => WriteOutcome::Rejected(resp),
            Ok(resp) => {
                let mut inner = tracked_lock(&b.inner, "route.backend");
                inner.applied_seq = seq;
                if let Some(e) = extract_u64(&resp, "epoch") {
                    inner.epoch = e;
                }
                WriteOutcome::Applied(resp)
            }
        }
    }

    /// Writer-thread body for a probe-requested replay: push every
    /// journal entry past the replica's cursor, in order. Run serially
    /// with client writes, so a replayed replica converges to exactly
    /// the fleet sequence.
    fn replay(&self, backend: usize) {
        let Some(b) = self.backends.get(backend) else { return };
        let (cursor, unrecoverable) = {
            let inner = tracked_lock(&b.inner, "route.backend");
            (inner.applied_seq, inner.unrecoverable.is_some())
        };
        if unrecoverable {
            return;
        }
        let pending: Vec<(u64, String)> = {
            let j = tracked_lock(&self.journal, "route.journal");
            if j.head == cursor {
                Vec::new()
            } else if j.entries.front().is_some_and(|e| e.seq > cursor + 1) {
                // The journal no longer holds the replica's gap.
                let bm = &self.metrics.backends[b.id];
                let mut inner = tracked_lock(&b.inner, "route.backend");
                inner.unrecoverable = Some("journal window lost; reload required");
                inner.state = BackendState::Degraded;
                bm.state.set(inner.state.as_gauge());
                return;
            } else {
                j.entries
                    .iter()
                    .filter(|e| e.seq > cursor)
                    .map(|e| (e.seq, e.line.clone()))
                    .collect()
            }
        };
        let mut replayed = 0u64;
        for (seq, line) in pending {
            match self.forward_write(b, &line, seq) {
                WriteOutcome::Applied(_) => replayed += 1,
                // A rejected replayed entry was rejected when first
                // written too (some replica applied it then, so a
                // divergence will surface through epochs) — skip it
                // rather than wedging the replica forever.
                WriteOutcome::Rejected(_) => {
                    let mut inner = tracked_lock(&b.inner, "route.backend");
                    inner.applied_seq = seq;
                }
                WriteOutcome::Missed { .. } => return, // probe will retry
            }
        }
        if replayed > 0 {
            self.metrics.journal_replayed.add(replayed);
        }
        // Caught up: promote.
        let bm = &self.metrics.backends[b.id];
        let mut inner = tracked_lock(&b.inner, "route.backend");
        if inner.state != BackendState::Down {
            inner.state = BackendState::Healthy;
            inner.retry_at = None;
            bm.state.set(inner.state.as_gauge());
        }
    }

    // ---- probing ---------------------------------------------------

    /// One prober sweep: every backend past its reconnect horizon gets
    /// a fresh-connection `stats` probe under the probe deadline.
    fn probe_round(&self) {
        for b in &self.backends {
            let due = {
                let inner = tracked_lock(&b.inner, "route.backend");
                inner.next_probe_at <= Instant::now()
            };
            if due {
                self.probe_one(b);
            }
        }
    }

    fn probe_one(&self, b: &Arc<Backend>) {
        self.metrics.probes.incr();
        let probe = self.dial(&b.addr, self.cfg.probe_deadline).and_then(|mut c| {
            Self::exchange(&mut c, "{\"op\":\"stats\"}", self.cfg.probe_deadline)
        });
        let resp = match probe {
            Err(_) => {
                self.metrics.probe_failures.incr();
                self.record_failure(b, "probe failed");
                return;
            }
            Ok(resp) => resp,
        };
        let epoch = extract_u64(&resp, "epoch").unwrap_or(0);
        let head = {
            let j = tracked_lock(&self.journal, "route.journal");
            j.head
        };
        let fleet_epoch = self.fleet_epoch(head, b.id);
        let needs_replay = {
            let bm = &self.metrics.backends[b.id];
            let mut inner = tracked_lock(&b.inner, "route.backend");
            inner.failures = 0;
            inner.next_probe_at = Instant::now() + self.cfg.probe_interval;
            if epoch < inner.epoch {
                // The replica's own epoch history regressed: it
                // restarted and lost state. Rewind the cursor so
                // replay rebuilds it from the journal.
                inner.applied_seq = 0;
                inner.unrecoverable = None;
            }
            inner.epoch = epoch;
            if inner.applied_seq < head {
                // A successful probe means reachable, so Down lifts to
                // Degraded here — which also unblocks the replay
                // forwards that repair the lag.
                inner.state = BackendState::Degraded;
                bm.state.set(inner.state.as_gauge());
                true
            } else if let Some(fe) = fleet_epoch {
                if epoch != fe {
                    // Same cursor, different epoch: the replica took
                    // installs the router never saw. Replay cannot
                    // repair a fork — hold it Degraded.
                    inner.state = BackendState::Degraded;
                    inner.unrecoverable = Some("epoch diverged from fleet");
                    bm.state.set(inner.state.as_gauge());
                    false
                } else {
                    inner.unrecoverable = None;
                    inner.state = BackendState::Healthy;
                    inner.retry_at = None;
                    bm.state.set(inner.state.as_gauge());
                    false
                }
            } else {
                inner.unrecoverable = None;
                inner.state = BackendState::Healthy;
                inner.retry_at = None;
                bm.state.set(inner.state.as_gauge());
                false
            }
        };
        if needs_replay {
            let tx = {
                let guard = tracked_lock(&self.writer, "route.writer");
                guard.clone()
            };
            let _ = tx.send(WriteJob::Replay { backend: b.id });
        }
    }

    /// The fleet's reference epoch: the epoch reported by any *other*
    /// replica whose cursor is at the journal head. None when no other
    /// replica is caught up (nothing to compare against).
    fn fleet_epoch(&self, head: u64, excluding: usize) -> Option<u64> {
        for b in &self.backends {
            if b.id == excluding {
                continue;
            }
            let inner = tracked_lock(&b.inner, "route.backend");
            if inner.applied_seq == head
                && inner.state != BackendState::Down
                && inner.unrecoverable.is_none()
            {
                return Some(inner.epoch);
            }
        }
        None
    }

    // ---- aggregate responses ---------------------------------------

    /// Router-level state for scripts and tests: per-backend states,
    /// cursors, epochs, and the headline counters.
    fn route_stats_response(&self) -> String {
        let head = {
            let j = tracked_lock(&self.journal, "route.journal");
            j.head
        };
        let mut states = String::new();
        let mut epochs = String::new();
        let mut seqs = String::new();
        for (i, b) in self.backends.iter().enumerate() {
            let inner = tracked_lock(&b.inner, "route.backend");
            if i > 0 {
                states.push(',');
                epochs.push(',');
                seqs.push(',');
            }
            states.push_str(inner.state.name());
            epochs.push_str(&inner.epoch.to_string());
            seqs.push_str(&inner.applied_seq.to_string());
        }
        JsonObj::new()
            .bool("ok", true)
            .u64("backends", self.backends.len() as u64)
            .str("states", &states)
            .str("epochs", &epochs)
            .str("applied_seqs", &seqs)
            .u64("fleet_seq", head)
            .u64("journal_entries", self.metrics.journal_entries.get())
            .u64("requests", self.metrics.requests.get())
            .u64("retries", self.metrics.retries.get())
            .u64("failovers", self.metrics.failovers.get())
            .u64("sheds", self.metrics.sheds.get())
            .u64("probes", self.metrics.probes.get())
            .u64("journal_replayed", self.metrics.journal_replayed.get())
            .finish()
    }

    /// Fleet-wide `graph-stats`: asks every non-Down replica for its
    /// graph stats and reports the per-backend epoch set plus whether
    /// the fleet is in sync (all cursors at head, all epochs equal).
    fn graph_stats_response(&self) -> String {
        let head = {
            let j = tracked_lock(&self.journal, "route.journal");
            j.head
        };
        let line = "{\"op\":\"graph-stats\"}";
        let mut epochs = String::new();
        let mut in_sync = true;
        let mut reference: Option<u64> = None;
        for (i, b) in self.backends.iter().enumerate() {
            if i > 0 {
                epochs.push(',');
            }
            let down = {
                let inner = tracked_lock(&b.inner, "route.backend");
                inner.state == BackendState::Down
            };
            let epoch = if down {
                in_sync = false;
                None
            } else {
                match self.forward(b, line, self.cfg.request_deadline) {
                    Ok(resp) => extract_u64(&resp, "epoch"),
                    Err(_) => None,
                }
            };
            match epoch {
                None => {
                    in_sync = false;
                    epochs.push('-');
                }
                Some(e) => {
                    epochs.push_str(&e.to_string());
                    match reference {
                        None => reference = Some(e),
                        Some(r) if r != e => in_sync = false,
                        Some(_) => {}
                    }
                    let inner = tracked_lock(&b.inner, "route.backend");
                    if inner.applied_seq != head {
                        in_sync = false;
                    }
                }
            }
        }
        JsonObj::new()
            .bool("ok", true)
            .u64("backends", self.backends.len() as u64)
            .str("epochs", &epochs)
            .bool("in_sync", in_sync)
            .u64("fleet_seq", head)
            .u64("fleet_epoch", reference.unwrap_or(0))
            .finish()
    }
}

enum WriteOutcome {
    Applied(String),
    Missed { transient: bool },
    Rejected(String),
}

/// Whether a response line carries the transient-failure flag.
fn is_transient(resp: &str) -> bool {
    resp.contains("\"transient\":true")
}

/// Pulls an unsigned integer field out of a flat-JSON line.
fn extract_u64(resp: &str, key: &str) -> Option<u64> {
    let rest = resp.split_once(&format!("\"{key}\":"))?.1;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

/// Replaces the first `"key":<digits>` occurrence with `value`,
/// leaving everything else byte-identical. Used to swap backend-local
/// ids for router-scoped ones in both directions.
fn rewrite_u64(resp: &str, key: &str, value: u64) -> String {
    let needle = format!("\"{key}\":");
    match resp.split_once(&needle) {
        None => resp.to_string(),
        Some((pre, rest)) => {
            let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
            format!("{pre}{needle}{value}{}", &rest[end..])
        }
    }
}

// ---- graceful shutdown --------------------------------------------

static SIGTERM: AtomicBool = AtomicBool::new(false);

/// Installs a process-wide SIGTERM latch (no-op off unix): the handler
/// only stores an atomic flag, which [`sigterm_received`] exposes so a
/// serving binary's watcher thread can drain and exit 0 instead of
/// dying mid-response. Uses a raw `signal(2)` binding because the repo
/// carries no libc crate; the handler is async-signal-safe (one
/// relaxed atomic store, no allocation, no locks).
pub fn install_sigterm_latch() {
    #[cfg(unix)]
    {
        extern "C" fn on_sigterm(_signum: i32) {
            SIGTERM.store(true, Ordering::Relaxed);
        }
        extern "C" {
            fn signal(signum: i32, handler: usize) -> usize;
        }
        const SIGTERM_NUM: i32 = 15;
        // SAFETY: `signal` is the POSIX libc entry point (always linked
        // by std on unix); the handler passed is an `extern "C"`
        // function of the required signature that performs only an
        // atomic store, which is async-signal-safe.
        unsafe {
            signal(SIGTERM_NUM, on_sigterm as *const () as usize);
        }
    }
}

/// True once SIGTERM has been delivered (always false off unix or
/// before [`install_sigterm_latch`]).
pub fn sigterm_received() -> bool {
    SIGTERM.load(Ordering::Relaxed)
}

/// Polls `quiesced` every 10ms until it holds or `deadline` elapses;
/// returns whether the system drained in time. The drain half of the
/// graceful-shutdown contract shared by `ligra-serve` and
/// `ligra-route`.
pub fn drain_until(quiesced: impl Fn() -> bool, deadline: Duration) -> bool {
    let start = Instant::now();
    loop {
        if quiesced() {
            return true;
        }
        if start.elapsed() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_gauge_encoding_is_ordered() {
        assert_eq!(BackendState::Down.as_gauge(), 0);
        assert_eq!(BackendState::Degraded.as_gauge(), 1);
        assert_eq!(BackendState::Healthy.as_gauge(), 2);
        assert_eq!(BackendState::Healthy.name(), "healthy");
    }

    #[test]
    fn id_rewriting_round_trips() {
        let resp = r#"{"ok":true,"id":41,"trace_id":"t-41","status":"queued"}"#;
        let out = rewrite_u64(resp, "id", 7);
        assert_eq!(out, r#"{"ok":true,"id":7,"trace_id":"t-41","status":"queued"}"#);
        assert_eq!(extract_u64(&out, "id"), Some(7));
        // Missing key: line passes through untouched.
        assert_eq!(rewrite_u64(r#"{"ok":true}"#, "id", 7), r#"{"ok":true}"#);
        assert_eq!(extract_u64(r#"{"ok":true}"#, "id"), None);
    }

    #[test]
    fn transient_detection_matches_wire_flag() {
        assert!(is_transient(r#"{"ok":false,"transient":true}"#));
        assert!(!is_transient(r#"{"ok":false,"transient":false}"#));
        assert!(!is_transient(r#"{"ok":true}"#));
    }

    #[test]
    fn router_requires_backends() {
        assert!(Router::start(RouterConfig::default()).is_err());
    }

    #[test]
    fn drain_until_times_out_and_succeeds() {
        assert!(drain_until(|| true, Duration::from_millis(1)));
        let start = Instant::now();
        assert!(!drain_until(|| false, Duration::from_millis(30)));
        assert!(start.elapsed() >= Duration::from_millis(30));
    }
}
