//! Named-site lock guards: the engine half of the runtime lock-order
//! oracle (DESIGN.md §15).
//!
//! Every engine-tier lock acquisition goes through [`tracked_lock`] /
//! [`tracked_read`] / [`tracked_write`] with a stable site name
//! (`"scheduler.queue"`, `"job.state"`, `"mutation.state"`,
//! `"store.current"`, …). In normal builds the wrappers are
//! zero-bookkeeping poison-recovering guards; with the `lock-check`
//! feature they report every acquisition and release to
//! [`LockOracle::global`], which maintains the per-thread hold stacks
//! and the cross-thread acquisition-order DAG and aborts on the first
//! cycle-closing edge with both threads' witness chains.
//!
//! Condvar waits release and re-acquire: [`TrackedGuard::wait`] and
//! [`TrackedGuard::wait_timeout`] consume the guard, tell the oracle
//! the site was released for the duration of the wait, and re-register
//! it on wakeup — so parking on `queue_cv` with the queue lock is not
//! mistaken for holding the queue across the park.
//!
//! Poison recovery is policy here, as in the scheduler it serves: a
//! worker panic is contained per-query and every guarded structure is
//! consistent between operations, so the poison flag carries no
//! information (this deliberately extends to the snapshot store, which
//! previously treated poisoning as fatal).

use std::ops::{Deref, DerefMut};
use std::sync::{
    Condvar, Mutex, MutexGuard, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard,
    WaitTimeoutResult,
};
use std::time::Duration;

pub use ligra::lockdep::{EdgeWitness, LockOracle, LockReport, LockViolation};

#[cfg(feature = "lock-check")]
#[inline]
fn oracle_acquire(site: &'static str) {
    LockOracle::global().acquire(site);
}

#[cfg(not(feature = "lock-check"))]
#[inline]
fn oracle_acquire(_site: &'static str) {}

#[cfg(feature = "lock-check")]
#[inline]
fn oracle_release(site: &'static str) {
    LockOracle::global().release(site);
}

#[cfg(not(feature = "lock-check"))]
#[inline]
fn oracle_release(_site: &'static str) {}

/// A mutex guard bound to a named lock site. Dereferences like the
/// underlying `MutexGuard`; releasing (by drop or condvar wait) pops
/// the site from the oracle's hold stack under `lock-check`.
pub struct TrackedGuard<'a, T> {
    /// `None` only transiently, while a consuming wait owns the inner
    /// guard (or after drop).
    inner: Option<MutexGuard<'a, T>>,
    site: &'static str,
}

/// Acquires `m` under `site`, recovering from poisoning. Under
/// `lock-check` the acquisition is registered *before* blocking on the
/// real mutex — a deadlock-closing edge must be reported by the thread
/// that would complete the cycle, not discovered after it is stuck.
pub fn tracked_lock<'a, T>(m: &'a Mutex<T>, site: &'static str) -> TrackedGuard<'a, T> {
    oracle_acquire(site);
    TrackedGuard { inner: Some(m.lock().unwrap_or_else(PoisonError::into_inner)), site }
}

impl<'a, T> TrackedGuard<'a, T> {
    /// Atomically releases the lock and parks on `cv`, re-acquiring on
    /// wakeup — `std::sync::Condvar::wait` in tracked form. The oracle
    /// sees the site released for the duration of the park.
    pub fn wait(mut self, cv: &Condvar) -> TrackedGuard<'a, T> {
        let site = self.site;
        let g = self.inner.take().expect("tracked guard already consumed");
        oracle_release(site);
        drop(self);
        let g = cv.wait(g).unwrap_or_else(PoisonError::into_inner);
        oracle_acquire(site);
        TrackedGuard { inner: Some(g), site }
    }

    /// [`TrackedGuard::wait`] with a timeout; returns the re-acquired
    /// guard and whether the wait timed out.
    pub fn wait_timeout(
        mut self,
        cv: &Condvar,
        timeout: Duration,
    ) -> (TrackedGuard<'a, T>, WaitTimeoutResult) {
        let site = self.site;
        let g = self.inner.take().expect("tracked guard already consumed");
        oracle_release(site);
        drop(self);
        let (g, res) = cv.wait_timeout(g, timeout).unwrap_or_else(PoisonError::into_inner);
        oracle_acquire(site);
        (TrackedGuard { inner: Some(g), site }, res)
    }
}

impl<T> Deref for TrackedGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("tracked guard used after a consuming wait")
    }
}

impl<T> DerefMut for TrackedGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("tracked guard used after a consuming wait")
    }
}

impl<T> Drop for TrackedGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real mutex before telling the oracle: a thread
        // must never appear to hold a site it has already given up.
        if self.inner.take().is_some() {
            oracle_release(self.site);
        }
    }
}

/// A shared (read) `RwLock` guard bound to a named site. Reader-reader
/// coexistence doesn't exempt it from ordering: a writer queued between
/// two readers turns any read-side cycle into a real deadlock, so reads
/// register like every other acquisition.
pub struct TrackedReadGuard<'a, T> {
    inner: Option<RwLockReadGuard<'a, T>>,
    site: &'static str,
}

/// Acquires `l` for shared reading under `site`, recovering from
/// poisoning.
pub fn tracked_read<'a, T>(l: &'a RwLock<T>, site: &'static str) -> TrackedReadGuard<'a, T> {
    oracle_acquire(site);
    TrackedReadGuard { inner: Some(l.read().unwrap_or_else(PoisonError::into_inner)), site }
}

impl<T> Deref for TrackedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("tracked read guard already released")
    }
}

impl<T> Drop for TrackedReadGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            oracle_release(self.site);
        }
    }
}

/// An exclusive (write) `RwLock` guard bound to a named site.
pub struct TrackedWriteGuard<'a, T> {
    inner: Option<RwLockWriteGuard<'a, T>>,
    site: &'static str,
}

/// Acquires `l` for exclusive writing under `site`, recovering from
/// poisoning.
pub fn tracked_write<'a, T>(l: &'a RwLock<T>, site: &'static str) -> TrackedWriteGuard<'a, T> {
    oracle_acquire(site);
    TrackedWriteGuard { inner: Some(l.write().unwrap_or_else(PoisonError::into_inner)), site }
}

impl<T> Deref for TrackedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_deref().expect("tracked write guard already released")
    }
}

impl<T> DerefMut for TrackedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_deref_mut().expect("tracked write guard already released")
    }
}

impl<T> Drop for TrackedWriteGuard<'_, T> {
    fn drop(&mut self) {
        if self.inner.take().is_some() {
            oracle_release(self.site);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn tracked_guard_round_trip() {
        let m = Mutex::new(5u32);
        {
            let mut g = tracked_lock(&m, "test.m");
            *g += 1;
        }
        assert_eq!(*tracked_lock(&m, "test.m"), 6);
    }

    #[test]
    fn tracked_rwlock_round_trip() {
        let l = RwLock::new(1u32);
        {
            let mut w = tracked_write(&l, "test.l");
            *w = 7;
        }
        let r1 = tracked_read(&l, "test.l");
        let r2 = tracked_read(&l, "test.l");
        assert_eq!((*r1, *r2), (7, 7));
    }

    #[test]
    fn wait_hands_the_guard_across_the_park() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let waker = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*waker;
            let mut g = tracked_lock(m, "test.pair");
            *g = true;
            drop(g);
            cv.notify_one();
        });
        let (m, cv) = &*pair;
        let mut g = tracked_lock(m, "test.pair");
        while !*g {
            g = g.wait(cv);
        }
        assert!(*g);
        drop(g);
        t.join().expect("waker thread");
    }

    #[test]
    fn wait_timeout_reports_expiry() {
        let m = Mutex::new(0u32);
        let cv = Condvar::new();
        let g = tracked_lock(&m, "test.m");
        let (g, res) = g.wait_timeout(&cv, Duration::from_millis(5));
        assert!(res.timed_out());
        assert_eq!(*g, 0);
    }
}
