//! `ligra-route`: a replicated-serving router over `ligra-serve`
//! backends.
//!
//! Speaks the same flat-JSONL protocol as `ligra-serve` on the client
//! side and fans ops out to N backends (DESIGN.md §16): reads go to
//! the least-loaded live replica with failover, writes are journaled
//! and replicated to every replica, and health probes drive each
//! replica's Healthy/Degraded/Down state machine.
//!
//! ```text
//! ligra-route --listen ADDR --backend ADDR [--backend ADDR]...
//!             [--metrics-addr ADDR] [--max-inflight N]
//!             [--probe-interval-ms N] [--probe-deadline-ms N]
//!             [--request-deadline-ms N] [--journal-capacity N]
//!             [--down-after N] [--retries N] [--drain-deadline-ms N]
//!             [--fault SPEC]... [--fault-seed N]
//! ```
//!
//! Router-local ops: `ping`, `route-stats` (backend states, cursors,
//! failover/shed/retry counters), `shutdown` (drain then exit 0; also
//! triggered by SIGTERM on unix). `graph-stats` is answered fleet-wide
//! with the per-backend epoch set and an `in_sync` verdict. Everything
//! else is routed: `submit`/`poll`/`wait`/`cancel`/`span`/`stats`/
//! `metrics`/`trace` as reads, `load`/`gen`/`mutate`/`compact` as
//! replicated writes.
//!
//! `--fault route.forward:action[:nth]` arms a deterministic fault on
//! the router→backend hop (`fault-inject` builds only) so the chaos
//! suite can error or lag forwards and assert failover behavior.

use ligra_engine::metrics::render_router;
use ligra_engine::route::{drain_until, install_sigterm_latch, sigterm_received};
use ligra_engine::wire::{read_request_line, MAX_REQUEST_LINE_BYTES};
use ligra_engine::{error_response, FaultPlan, Router, RouterConfig};
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

struct Args {
    listen: String,
    backends: Vec<String>,
    metrics_addr: Option<String>,
    max_inflight: usize,
    probe_interval: Duration,
    probe_deadline: Duration,
    request_deadline: Duration,
    journal_capacity: usize,
    down_after: u32,
    retries: u32,
    drain_deadline: Duration,
    fault_specs: Vec<String>,
    fault_seed: u64,
}

/// Operator-facing fatal error: report and exit instead of panicking
/// (lint L6 bans panics across the engine crate, binaries included).
fn fatal(msg: &str) -> ! {
    eprintln!("ligra-route: {msg}");
    std::process::exit(2);
}

fn usage() -> ! {
    eprintln!(
        "usage: ligra-route --listen ADDR --backend ADDR [--backend ADDR]... \
         [--metrics-addr ADDR] [--max-inflight N] [--probe-interval-ms N] \
         [--probe-deadline-ms N] [--request-deadline-ms N] [--journal-capacity N] \
         [--down-after N] [--retries N] [--drain-deadline-ms N] \
         [--fault SPEC]... [--fault-seed N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let defaults = RouterConfig::default();
    let mut args = Args {
        listen: "127.0.0.1:7200".to_string(),
        backends: Vec::new(),
        metrics_addr: None,
        max_inflight: defaults.max_inflight,
        probe_interval: defaults.probe_interval,
        probe_deadline: defaults.probe_deadline,
        request_deadline: defaults.request_deadline,
        journal_capacity: defaults.journal_capacity,
        down_after: defaults.down_after,
        retries: defaults.retries,
        drain_deadline: Duration::from_millis(5_000),
        fault_specs: Vec::new(),
        fault_seed: 1,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| fatal(&format!("{name} needs a value")));
        fn parsed<T: std::str::FromStr>(name: &str, raw: &str) -> T {
            raw.parse().unwrap_or_else(|_| fatal(&format!("{name}: cannot parse {raw:?}")))
        }
        fn ms(name: &str, raw: &str) -> Duration {
            Duration::from_millis(parsed(name, raw))
        }
        match a.as_str() {
            "--listen" => args.listen = value("--listen"),
            "--backend" => args.backends.push(value("--backend")),
            "--metrics-addr" => args.metrics_addr = Some(value("--metrics-addr")),
            "--max-inflight" => {
                args.max_inflight = parsed("--max-inflight", &value("--max-inflight"))
            }
            "--probe-interval-ms" => {
                args.probe_interval = ms("--probe-interval-ms", &value("--probe-interval-ms"))
            }
            "--probe-deadline-ms" => {
                args.probe_deadline = ms("--probe-deadline-ms", &value("--probe-deadline-ms"))
            }
            "--request-deadline-ms" => {
                args.request_deadline = ms("--request-deadline-ms", &value("--request-deadline-ms"))
            }
            "--journal-capacity" => {
                args.journal_capacity = parsed("--journal-capacity", &value("--journal-capacity"))
            }
            "--down-after" => args.down_after = parsed("--down-after", &value("--down-after")),
            "--retries" => args.retries = parsed("--retries", &value("--retries")),
            "--drain-deadline-ms" => {
                args.drain_deadline = ms("--drain-deadline-ms", &value("--drain-deadline-ms"))
            }
            "--fault" => args.fault_specs.push(value("--fault")),
            "--fault-seed" => args.fault_seed = parsed("--fault-seed", &value("--fault-seed")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    if args.backends.is_empty() {
        eprintln!("at least one --backend is required");
        usage();
    }
    if args.max_inflight == 0 {
        fatal("--max-inflight must be at least 1");
    }
    args
}

/// Builds the router's fault plan from `--fault` specs; rejected at
/// startup when the hooks are compiled out, mirroring `ligra-serve`.
fn build_fault_plan(args: &Args) -> Result<Option<Arc<FaultPlan>>, String> {
    if args.fault_specs.is_empty() {
        return Ok(None);
    }
    if !cfg!(feature = "fault-inject") {
        return Err(
            "--fault requires a ligra-route build with the fault-inject feature".to_string()
        );
    }
    let mut plan = FaultPlan::seeded(args.fault_seed);
    for spec in &args.fault_specs {
        plan = plan.arm_spec(spec).map_err(|e| format!("--fault {spec:?}: {e}"))?;
    }
    Ok(Some(Arc::new(plan)))
}

/// Serves one client connection; returns false when `shutdown` was
/// acknowledged (the caller then drains the fleet and exits 0).
fn serve_conn<R: BufRead, W: Write>(router: &Router, mut reader: R, mut writer: W) -> bool {
    loop {
        let line = match read_request_line(&mut reader, MAX_REQUEST_LINE_BYTES) {
            Ok(None) => break, // clean EOF
            Err(_) => break,   // transport failure; nothing to answer on
            Ok(Some(Err(e))) => {
                router.metrics().wire_malformed.incr();
                if write_response(&mut writer, &error_response(&e)).is_err() {
                    break;
                }
                continue;
            }
            Ok(Some(Ok(l))) => l,
        };
        if line.trim().is_empty() {
            continue;
        }
        let (resp, keep_going) = router.handle_line(&line);
        if write_response(&mut writer, &resp).is_err() {
            break;
        }
        if !keep_going {
            return false;
        }
    }
    true
}

fn write_response<W: Write>(writer: &mut W, resp: &str) -> std::io::Result<()> {
    writeln!(writer, "{resp}").and_then(|()| writer.flush())
}

/// Answers one Prometheus scrape with the router vocabulary
/// (`ROUTE_FAMILIES`), HTTP/1.0 framing, connection close.
fn answer_scrape(router: &Router, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?; // request line
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let body = render_router(router.metrics());
    let mut w = BufWriter::new(stream);
    write!(
        w,
        "HTTP/1.0 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{}",
        body.len(),
        body
    )?;
    w.flush()
}

fn spawn_metrics_listener(router: Arc<Router>, addr: &str) {
    let listener = TcpListener::bind(addr)
        .unwrap_or_else(|e| fatal(&format!("bind metrics addr {addr}: {e}")));
    match listener.local_addr() {
        Ok(a) => eprintln!("ligra-route: metrics on http://{a}/metrics"),
        Err(_) => eprintln!("ligra-route: metrics listener bound"),
    }
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let router = Arc::clone(&router);
            std::thread::spawn(move || {
                if let Err(e) = answer_scrape(&router, stream) {
                    eprintln!("ligra-route: metrics scrape: {e}");
                }
            });
        }
    });
}

/// Accept-gate for graceful shutdown, mirroring `ligra-serve`.
static SHUTTING_DOWN: AtomicBool = AtomicBool::new(false);

/// Graceful stop: stop accepting, wait for outstanding forwards to
/// finish up to the drain deadline, exit 0.
fn drain_and_exit(router: &Router, deadline: Duration) -> ! {
    SHUTTING_DOWN.store(true, Ordering::Release);
    router.begin_shutdown();
    eprintln!("ligra-route: draining {} outstanding forwards", router.outstanding_total());
    let drained = drain_until(|| router.outstanding_total() == 0, deadline);
    if drained {
        eprintln!("ligra-route: drained; exiting");
    } else {
        eprintln!("ligra-route: drain deadline hit with forwards still in flight; exiting");
    }
    std::process::exit(0);
}

fn main() {
    let args = parse_args();
    let fault = match build_fault_plan(&args) {
        Ok(f) => f,
        Err(e) => fatal(&e),
    };
    let router = Router::start(RouterConfig {
        backends: args.backends.clone(),
        max_inflight: args.max_inflight,
        probe_interval: args.probe_interval,
        probe_deadline: args.probe_deadline,
        request_deadline: args.request_deadline,
        journal_capacity: args.journal_capacity,
        down_after: args.down_after,
        retries: args.retries,
        fault,
    })
    .unwrap_or_else(|e| fatal(&e));

    if let Some(addr) = &args.metrics_addr {
        spawn_metrics_listener(Arc::clone(&router), addr);
    }

    install_sigterm_latch();
    {
        let router = Arc::clone(&router);
        let deadline = args.drain_deadline;
        std::thread::spawn(move || loop {
            if sigterm_received() {
                eprintln!("ligra-route: SIGTERM received");
                drain_and_exit(&router, deadline);
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }

    let listener = TcpListener::bind(&args.listen)
        .unwrap_or_else(|e| fatal(&format!("bind {}: {e}", args.listen)));
    eprintln!(
        "ligra-route: listening on {} over {} backend(s)",
        listener.local_addr().expect("bound listener has a local addr"),
        router.num_backends()
    );
    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(_) => continue,
        };
        if SHUTTING_DOWN.load(Ordering::Acquire) {
            drop(stream);
            continue;
        }
        let router = Arc::clone(&router);
        let deadline = args.drain_deadline;
        std::thread::spawn(move || {
            let reader = BufReader::new(stream.try_clone().expect("clone stream"));
            let keep = serve_conn(&router, reader, BufWriter::new(stream));
            if !keep {
                drain_and_exit(&router, deadline);
            }
        });
    }
}
