//! `ligra-serve`: a JSONL front-end for the concurrent query engine.
//!
//! One request per line, one flat-JSON response per line, over stdin
//! (default) or a localhost TCP socket (`--listen`). A third mode,
//! `--client ADDR`, pumps stdin lines to a running server and prints the
//! responses — a dependency-free smoke client for scripts and CI.
//!
//! ```text
//! ligra-serve [--listen ADDR | --client ADDR] [--metrics-addr ADDR]
//!             [--workers N] [--queue N] [--cache N]
//!             [--memory-budget BYTES]
//!             [--traversal auto|sparse|dense|dense-forward]
//!             [--graph PATH [--directed] [--weighted]]
//!             [--fault SPEC]... [--fault-seed N]
//!             [--drain-deadline-ms N]
//! ```
//!
//! The `shutdown` op (or SIGTERM on unix) stops the server gracefully:
//! new connections are refused, in-flight queries drain up to
//! `--drain-deadline-ms` (default 5000), and the process exits 0 — a
//! clean stop is distinguishable from a crash by exit code.
//!
//! `--metrics-addr` starts a loopback HTTP listener speaking Prometheus
//! text exposition (format 0.0.4) over the engine's metrics registry —
//! `curl http://ADDR/metrics` (any path works) returns the closed
//! family vocabulary pinned in `tests/tests/telemetry.rs`. Setting
//! `LIGRA_TRACE_DIR` makes every executed query write its per-round
//! kernel trace as `query-<trace_id>.jsonl` there; the same `trace_id`
//! appears in `submit`/`poll` responses and span JSONL, joining a
//! serving-tier span to its edgeMap rounds.
//!
//! `--fault point:action[:nth]` arms a deterministic fault (DESIGN.md
//! §11); it is accepted only in builds with the `fault-inject` feature.
//! Malformed, oversized, or non-UTF-8 request lines get an `error`
//! response and the connection keeps serving; they never tear it down.
//!
//! The traversal policy may also come from `LIGRA_TRAVERSAL` (the flag
//! wins). Requests:
//!
//! ```text
//! {"op":"load","path":"g.adj","symmetric":true,"weighted":false}
//! {"op":"gen","family":"rmat","log_n":12,"seed":1,"weighted":false}
//! {"op":"submit","query":"bfs","source":0,"deadline_ms":100,"trace_id":"req-7"}
//! {"op":"poll","id":3}        {"op":"wait","id":3}
//! {"op":"cancel","id":3}      {"op":"span","id":3}
//! {"op":"stats"}              {"op":"trace"}
//! {"op":"metrics"}            {"op":"shutdown"}
//! {"op":"mutate","add":"0-1,2-3","del":"4-5","add_vertices":1,"del_vertices":"7,9"}
//! {"op":"compact"}            {"op":"compact","wait":false}
//! {"op":"graph-stats"}
//! ```
//!
//! `mutate` applies one delta batch (edge lists are comma-separated
//! `u-v` pairs) and publishes the result as a new epoch; in-flight
//! queries finish on the snapshot they started with. `compact` flattens
//! the accumulated overlay into a clean CSR (synchronously by default;
//! `"wait":false` kicks it off in the background); overlays past
//! `--compact-threshold` arcs compact automatically.

use ligra::Traversal;
use ligra_engine::backoff::{retry_after_ms, Backoff};
use ligra_engine::lockdep::tracked_lock;
use ligra_engine::metrics::render;
use ligra_engine::route::{drain_until, install_sigterm_latch, sigterm_received};
use ligra_engine::wire::{read_request_line, MAX_REQUEST_LINE_BYTES};
use ligra_engine::{
    error_response, Engine, EngineConfig, FaultPlan, JsonObj, MetricsRegistry, MutateError,
    MutationConfig, MutationLog, Query, QueryHandle, Request, SubmitError,
};
use ligra_graph::delta::DeltaBatch;
use ligra_graph::generators::{
    erdos_renyi, grid3d, random_local, random_weights, rmat, RmatOptions,
};
use ligra_graph::io::{load_graph, read_weighted_adjacency_graph};
use ligra_graph::Graph;
use std::fs::File;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Per-process connection book-keeping, reported by the `stats` op.
/// The mutex is a named lock site (`serve.connections`): under the
/// `lock-check` feature its acquisitions feed the runtime lock-order
/// oracle alongside the engine-tier sites, proving the serving loop
/// never nests it against scheduler or mutation locks.
#[derive(Default)]
struct ConnRegistry {
    counts: Mutex<ConnCounts>,
    /// Highest replicated-write seq (`rseq`) applied. `ligra-route`
    /// tags every fanned-out write with its journal seq; a repeat (a
    /// replayed write this replica already applied, e.g. after the
    /// router timed out on a slow response) is acknowledged without
    /// re-applying, keeping replicated writes exactly-once per replica.
    last_rseq: std::sync::atomic::AtomicU64,
}

#[derive(Default, Clone, Copy)]
struct ConnCounts {
    active: u64,
    total: u64,
}

impl ConnRegistry {
    /// Registers a connection; returns its 1-based ordinal.
    fn open(&self) -> u64 {
        let mut c = tracked_lock(&self.counts, "serve.connections");
        c.active += 1;
        c.total += 1;
        c.total
    }

    /// Retires a connection.
    fn close(&self) {
        let mut c = tracked_lock(&self.counts, "serve.connections");
        c.active = c.active.saturating_sub(1);
    }

    /// `(active, total)` right now.
    fn snapshot(&self) -> (u64, u64) {
        let c = tracked_lock(&self.counts, "serve.connections");
        (c.active, c.total)
    }
}

struct Args {
    listen: Option<String>,
    client: Option<String>,
    metrics_addr: Option<String>,
    workers: usize,
    queue: usize,
    cache: usize,
    memory_budget: Option<u64>,
    traversal: Traversal,
    graph: Option<String>,
    symmetric: bool,
    weighted: bool,
    fault_specs: Vec<String>,
    fault_seed: u64,
    compact_threshold: Option<u64>,
    drain_deadline: Duration,
}

/// Operator-facing fatal error: report and exit instead of panicking
/// (lint L6 bans panics across the engine crate, binaries included).
fn fatal(msg: &str) -> ! {
    eprintln!("ligra-serve: {msg}");
    std::process::exit(2);
}

fn usage() -> ! {
    eprintln!(
        "usage: ligra-serve [--listen ADDR | --client ADDR] [--metrics-addr ADDR] \
         [--workers N] [--queue N] [--cache N] [--memory-budget BYTES] [--traversal POLICY] \
         [--graph PATH [--directed] [--weighted]] [--fault SPEC]... [--fault-seed N] \
         [--compact-threshold ARCS] [--drain-deadline-ms N]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        listen: None,
        client: None,
        metrics_addr: None,
        workers: 2,
        queue: 64,
        cache: 32,
        memory_budget: None,
        traversal: std::env::var("LIGRA_TRAVERSAL")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(Traversal::Auto),
        graph: None,
        symmetric: true,
        weighted: false,
        fault_specs: Vec::new(),
        fault_seed: 1,
        compact_threshold: MutationConfig::default().compact_threshold,
        drain_deadline: Duration::from_millis(5_000),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value =
            |name: &str| it.next().unwrap_or_else(|| fatal(&format!("{name} needs a value")));
        fn parsed<T: std::str::FromStr>(name: &str, raw: &str) -> T {
            raw.parse().unwrap_or_else(|_| fatal(&format!("{name}: cannot parse {raw:?}")))
        }
        match a.as_str() {
            "--listen" => args.listen = Some(value("--listen")),
            "--client" => args.client = Some(value("--client")),
            "--metrics-addr" => args.metrics_addr = Some(value("--metrics-addr")),
            "--workers" => args.workers = parsed("--workers", &value("--workers")),
            "--queue" => args.queue = parsed("--queue", &value("--queue")),
            "--cache" => args.cache = parsed("--cache", &value("--cache")),
            "--memory-budget" => {
                args.memory_budget = Some(parsed("--memory-budget", &value("--memory-budget")))
            }
            "--traversal" => args.traversal = parsed("--traversal", &value("--traversal")),
            "--graph" => args.graph = Some(value("--graph")),
            "--directed" => args.symmetric = false,
            "--weighted" => args.weighted = true,
            "--fault" => args.fault_specs.push(value("--fault")),
            "--fault-seed" => args.fault_seed = parsed("--fault-seed", &value("--fault-seed")),
            "--compact-threshold" => {
                // 0 disables auto-compaction (explicit `compact` still works).
                let arcs: u64 = parsed("--compact-threshold", &value("--compact-threshold"));
                args.compact_threshold = (arcs > 0).then_some(arcs);
            }
            "--drain-deadline-ms" => {
                args.drain_deadline = Duration::from_millis(parsed(
                    "--drain-deadline-ms",
                    &value("--drain-deadline-ms"),
                ));
            }
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag {other:?}");
                usage();
            }
        }
    }
    if args.listen.is_some() && args.client.is_some() {
        eprintln!("--listen and --client are mutually exclusive");
        usage();
    }
    args
}

/// Replicated-write dedup: when the request carries an `rseq` tag at
/// or below the highest successfully applied, answer `duplicate` with
/// the current epoch instead of re-applying; otherwise run `apply` and
/// advance the cursor only if it succeeded (a failed write must stay
/// replayable). Router writes arrive from one serializer thread, so a
/// plain load/store pair is race-free here.
fn replicated_write<F>(
    req: &Request,
    engine: &Engine,
    conns: &ConnRegistry,
    apply: F,
) -> Result<String, String>
where
    F: FnOnce() -> Result<String, String>,
{
    use std::sync::atomic::Ordering;
    let rseq = req.u64_or("rseq", 0).unwrap_or(0);
    if rseq > 0 && rseq <= conns.last_rseq.load(Ordering::Acquire) {
        return Ok(JsonObj::new()
            .bool("ok", true)
            .u64("epoch", engine.stats().epoch.unwrap_or(0))
            .bool("duplicate", true)
            .u64("rseq", rseq)
            .finish());
    }
    let resp = apply();
    if rseq > 0 {
        if let Ok(r) = &resp {
            if r.contains("\"ok\":true") {
                conns.last_rseq.store(rseq, Ordering::Release);
            }
        }
    }
    resp
}

fn load_into(engine: &Engine, path: &str, symmetric: bool, weighted: bool) -> Result<u64, String> {
    // The `graph.load` fault point guards the serve-side load path: an
    // injected error (or contained panic) becomes a load failure the
    // client sees, never a dead connection.
    #[cfg(feature = "fault-inject")]
    if let Some(plan) = engine.fault_plan() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        match catch_unwind(AssertUnwindSafe(|| plan.check(ligra::FaultPoint::GraphLoad))) {
            Ok(Ok(())) => {}
            Ok(Err(e)) => return Err(e.to_string()),
            Err(payload) => {
                return Err(ligra_engine::error::classify_panic(payload.as_ref()).to_string())
            }
        }
    }
    if weighted {
        let file = File::open(path).map_err(|e| format!("open {path}: {e}"))?;
        let g = read_weighted_adjacency_graph(file, symmetric).map_err(|e| e.to_string())?;
        Ok(engine.install_weighted(Arc::new(g)))
    } else {
        let g = load_graph(path, symmetric).map_err(|e| e.to_string())?;
        Ok(engine.install_graph(Arc::new(g)))
    }
}

/// Narrows a request-supplied integer, reporting (not panicking on) overflow.
fn to_u32(x: u64, field: &str) -> Result<u32, String> {
    u32::try_from(x).map_err(|_| format!("{field} {x} exceeds u32 range"))
}

fn generate(req: &Request) -> Result<Graph, String> {
    let seed = req.u64_or("seed", 1)?;
    match req.str("family")? {
        "rmat" => {
            let log_n = to_u32(req.u64_or("log_n", 12)?, "log_n")?;
            Ok(rmat(&RmatOptions::paper(log_n)))
        }
        "grid3d" => {
            let side = req.u64_or("side", 16)? as usize;
            Ok(grid3d(side))
        }
        "random-local" | "random_local" => {
            let n = req.u64_or("n", 10_000)? as usize;
            let deg = req.u64_or("deg", 8)? as usize;
            Ok(random_local(n, deg, seed))
        }
        "erdos-renyi" | "er" => {
            let n = req.u64_or("n", 10_000)? as usize;
            let m = req.u64_or("m", 50_000)? as usize;
            Ok(erdos_renyi(n, m, seed, true))
        }
        other => Err(format!("unknown family {other:?} (rmat|grid3d|random-local|erdos-renyi)")),
    }
}

fn query_from(req: &Request) -> Result<Query, String> {
    let source = to_u32(req.u64_or("source", 0)?, "source")?;
    let seed = req.u64_or("seed", 1)?;
    match req.str("query")? {
        "bfs" => Ok(Query::Bfs { source }),
        "bc" => Ok(Query::Bc { source }),
        "cc" => Ok(Query::Cc),
        "pagerank" => {
            Ok(Query::PageRank { iters: to_u32(req.u64_or("max_iters", 20)?, "max_iters")? })
        }
        "radii" => Ok(Query::Radii { seed }),
        "bellman-ford" | "bellman_ford" => Ok(Query::BellmanFord { source }),
        "kcore" | "k-core" => Ok(Query::KCore),
        "mis" => Ok(Query::Mis { seed }),
        other => Err(format!(
            "unknown query {other:?} (bfs|bc|cc|pagerank|radii|bellman-ford|kcore|mis)"
        )),
    }
}

fn graph_response(epoch: u64) -> String {
    JsonObj::new().bool("ok", true).u64("epoch", epoch).finish()
}

/// Parses a comma-separated `u-v` edge list (the wire format is flat
/// JSON, so edge lists ride in a string field).
fn parse_edge_list(s: &str) -> Result<Vec<(u32, u32)>, String> {
    let mut out = Vec::new();
    for pair in s.split(',') {
        let pair = pair.trim();
        if pair.is_empty() {
            continue;
        }
        let (u, v) =
            pair.split_once('-').ok_or_else(|| format!("edge {pair:?}: expected \"u-v\""))?;
        let parse = |raw: &str| -> Result<u32, String> {
            raw.trim().parse().map_err(|_| format!("edge {pair:?}: bad vertex id {raw:?}"))
        };
        out.push((parse(u)?, parse(v)?));
    }
    Ok(out)
}

/// Parses a comma-separated vertex-id list.
fn parse_vertex_list(s: &str) -> Result<Vec<u32>, String> {
    s.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .map(|t| t.parse().map_err(|_| format!("bad vertex id {t:?}")))
        .collect()
}

fn batch_from(req: &Request) -> Result<DeltaBatch, String> {
    let mut batch = DeltaBatch::new();
    batch.add_vertices = req.u64_or("add_vertices", 0)? as usize;
    if req.get("add").is_some() {
        batch.add_edges = parse_edge_list(req.str("add")?)?;
    }
    if req.get("del").is_some() {
        batch.del_edges = parse_edge_list(req.str("del")?)?;
    }
    if req.get("del_vertices").is_some() {
        batch.del_vertices = parse_vertex_list(req.str("del_vertices")?)?;
    }
    if batch.is_empty() {
        return Err("empty mutation: provide add, del, add_vertices, or del_vertices".to_string());
    }
    Ok(batch)
}

/// Renders a mutation/compaction failure; transient ones carry
/// `"transient":true` (and a retry hint when the engine has one) so the
/// built-in client's backoff loop handles them like overload sheds.
fn mutate_error_response(e: &MutateError) -> String {
    let mut obj = JsonObj::new()
        .bool("ok", false)
        .str("error", &e.to_string())
        .bool("transient", e.is_transient());
    if let MutateError::Overloaded { retry_after } = e {
        obj = obj.u64("retry_after_ms", u64::try_from(retry_after.as_millis()).unwrap_or(u64::MAX));
    }
    obj.finish()
}

fn mutate_response(log: &Arc<MutationLog>, req: &Request) -> Result<String, String> {
    let batch = batch_from(req)?;
    match log.apply(&batch) {
        Ok(r) => Ok(JsonObj::new()
            .bool("ok", true)
            .u64("epoch", r.epoch)
            .u64("arcs_added", r.arcs_added)
            .u64("arcs_deleted", r.arcs_deleted)
            .u64("vertices_added", r.vertices_added)
            .u64("vertices_deleted", r.vertices_deleted)
            .u64("overlay_edges", r.overlay_arcs)
            .u64("overlay_vertices", r.overlay_vertices)
            .bool("compaction_started", r.compaction_started)
            .finish()),
        Err(e) => Ok(mutate_error_response(&e)),
    }
}

fn compact_response(log: &Arc<MutationLog>, req: &Request) -> Result<String, String> {
    if !req.bool_or("wait", true)? {
        let started = log.compact_async();
        return Ok(JsonObj::new().bool("ok", true).bool("started", started).finish());
    }
    match log.compact() {
        Ok(r) => Ok(JsonObj::new()
            .bool("ok", true)
            .u64("epoch", r.epoch)
            .u64("compact_ms", u64::try_from(r.duration.as_millis()).unwrap_or(u64::MAX))
            .u64("edges", r.edges)
            .u64("reapplied_batches", r.reapplied_batches as u64)
            .finish()),
        Err(e) => Ok(mutate_error_response(&e)),
    }
}

fn graph_stats_response(engine: &Engine, log: &Arc<MutationLog>) -> String {
    let status = log.status();
    let m = engine.metrics();
    let mut obj = JsonObj::new().bool("ok", true);
    match engine.current_snapshot() {
        None => obj = obj.u64("epoch", 0).bool("loaded", false),
        Some(snap) => {
            let g = snap.graph();
            obj = obj
                .u64("epoch", snap.epoch())
                .bool("loaded", true)
                .u64("vertices", g.num_vertices() as u64)
                .u64("edges", g.num_edges() as u64)
                .bool("symmetric", g.is_symmetric())
                .bool("has_overlay", g.has_overlay())
                .u64("overlay_edges", g.overlay_arcs())
                .u64("overlay_vertices", g.overlay_vertices());
        }
    }
    obj.u64("pending_batches", status.pending_batches as u64)
        .bool("compacting", status.compacting)
        .u64("derived_epoch", status.derived_epoch)
        .u64("compactions", m.mutation_compactions.get())
        .u64("compaction_failures", m.mutation_compaction_failures.get())
        .finish()
}

fn status_response(h: &QueryHandle) -> JsonObj {
    let status = h.status();
    let mut obj = JsonObj::new()
        .bool("ok", true)
        .u64("id", h.id())
        .str("trace_id", h.trace_id())
        .str("status", status.name());
    if let Some(span) = h.span() {
        obj = obj.bool("cache_hit", span.cache_hit).u64("edge_map_rounds", span.rounds);
    }
    if let Some(result) = h.result() {
        for (k, v) in result.summary() {
            // Summaries are numbers or bools rendered as strings; emit
            // numeric-looking ones raw so clients get real numbers.
            obj = if v.parse::<f64>().is_ok() || v == "true" || v == "false" {
                obj.raw(k, &v)
            } else {
                obj.str(k, &v)
            };
        }
    }
    if let Some(err) = h.query_error() {
        obj = obj.str("error", &err.to_string()).bool("transient", err.is_transient());
    }
    obj
}

fn span_response(engine: &Engine, id: u64) -> String {
    match engine.span(id) {
        None => error_response(&format!("no finished span for id {id}")),
        Some(s) => JsonObj::new()
            .bool("ok", true)
            .u64("id", s.id)
            .str("trace_id", &s.trace_id)
            .str("query", &s.query)
            .u64("epoch", s.epoch)
            .str("status", s.status.name())
            .bool("cache_hit", s.cache_hit)
            .u64("queue_wait_ns", s.queue_wait_ns)
            .u64("queue_wait_bucket", s.queue_wait_bucket)
            .u64("run_ns", s.run_ns)
            .u64("run_bucket", s.run_bucket)
            .u64("rounds", s.rounds)
            .u64("events", s.events)
            .u64("retries", s.retries)
            .finish(),
    }
}

fn stats_response(engine: &Engine, conns: &ConnRegistry) -> String {
    let s = engine.stats();
    let (conn_active, conn_total) = conns.snapshot();
    JsonObj::new()
        .bool("ok", true)
        .u64("epoch", s.epoch.unwrap_or(0))
        .u64("queued", s.queued as u64)
        .u64("running", s.running)
        .u64("submitted", s.submitted)
        .u64("rejected", s.rejected)
        .u64("completed", s.completed)
        .u64("cancelled", s.cancelled)
        .u64("failed", s.failed)
        .u64("sheds", s.sheds)
        .u64("panics", s.panics)
        .u64("retries", s.retries)
        .u64("queue_deadline_sheds", s.queue_deadline_sheds)
        .u64("inflight_bytes", s.inflight_bytes)
        .u64("cache_hits", s.cache_hits)
        .u64("cache_misses", s.cache_misses)
        .u64("cache_evictions", s.cache_evictions)
        .u64("cache_len", s.cache_len as u64)
        .u64("queue_wait_p50_ns", s.queue_wait_p50_ns)
        .u64("queue_wait_p95_ns", s.queue_wait_p95_ns)
        .u64("queue_wait_p99_ns", s.queue_wait_p99_ns)
        .u64("queue_wait_max_ns", s.queue_wait_max_ns)
        .u64("run_p50_ns", s.run_p50_ns)
        .u64("run_p95_ns", s.run_p95_ns)
        .u64("run_p99_ns", s.run_p99_ns)
        .u64("run_max_ns", s.run_max_ns)
        .u64("mutation_batches", s.mutation_batches)
        .u64("mutation_edges_added", s.mutation_edges_added)
        .u64("mutation_edges_deleted", s.mutation_edges_deleted)
        .u64("overlay_edges", s.overlay_edges)
        .u64("overlay_vertices", s.overlay_vertices)
        .u64("compactions", s.compactions)
        .u64("compaction_failures", s.compaction_failures)
        .u64("workers", engine.workers() as u64)
        .u64("queue_capacity", engine.queue_capacity() as u64)
        .u64("connections_active", conn_active)
        .u64("connections_total", conn_total)
        .finish()
}

/// The `metrics` op: the full metrics snapshot as one flat JSON object —
/// scalar counters/gauges, merged histogram quantiles, and per-point
/// fault-injection counts (`fault_<point>` with dots underscored). The
/// same snapshot the Prometheus exposition renders, in JSONL clothing.
fn metrics_response(engine: &Engine) -> String {
    let m = engine.metrics_snapshot();
    let qw = m.merged_queue_wait();
    let rt = m.merged_run_time();
    let mut obj = JsonObj::new()
        .bool("ok", true)
        .u64("epoch", m.epoch)
        .u64("workers", m.workers)
        .u64("queue_capacity", m.queue_capacity)
        .u64("queue_depth", m.queue_depth)
        .u64("running", m.running)
        .u64("inflight_bytes", m.inflight_bytes)
        .u64("memory_budget_bytes", m.memory_budget_bytes)
        .u64("submitted", m.submitted)
        .u64("rejected", m.rejected)
        .u64("overload_sheds", m.overload_sheds)
        .u64("retired_done", m.retired[0])
        .u64("retired_cancelled", m.retired[1])
        .u64("retired_failed", m.retired[2])
        .u64("retired_panicked", m.retired[3])
        .u64("retired_shed", m.retired[4])
        .u64("retries", m.retries)
        .u64("worker_busy_ns", m.worker_busy_ns)
        .u64("worker_idle_ns", m.worker_idle_ns)
        .u64("cache_hits", m.cache_hits)
        .u64("cache_misses", m.cache_misses)
        .u64("cache_evictions", m.cache_evictions)
        .u64("cache_entries", m.cache_entries)
        .u64("partition_rounds", m.partition_rounds)
        .u64("partition_bins_flushed", m.partition_bins_flushed)
        .u64("partition_scatter_bytes", m.partition_scatter_bytes)
        .u64("mutation_batches", m.mutation_batches)
        .u64("mutation_edges_added", m.mutation_edges_added)
        .u64("mutation_edges_deleted", m.mutation_edges_deleted)
        .u64("mutation_overlay_edges", m.mutation_overlay_edges)
        .u64("mutation_overlay_vertices", m.mutation_overlay_vertices)
        .u64("mutation_compactions", m.mutation_compactions)
        .u64("mutation_compaction_failures", m.mutation_compaction_failures)
        .u64("mutation_compact_count", m.mutation_compact_time.count)
        .u64("mutation_compact_p50_ns", m.mutation_compact_time.p50())
        .u64("mutation_compact_max_ns", m.mutation_compact_time.max)
        .u64("wire_requests", m.wire_requests)
        .u64("wire_bytes", m.wire_bytes)
        .u64("wire_malformed", m.wire_malformed)
        .u64("queue_wait_count", qw.count)
        .u64("queue_wait_p50_ns", qw.p50())
        .u64("queue_wait_p95_ns", qw.p95())
        .u64("queue_wait_p99_ns", qw.p99())
        .u64("queue_wait_max_ns", qw.max)
        .u64("run_count", rt.count)
        .u64("run_p50_ns", rt.p50())
        .u64("run_p95_ns", rt.p95())
        .u64("run_p99_ns", rt.p99())
        .u64("run_max_ns", rt.max);
    for (point, fired) in &m.fault_injections {
        obj = obj.u64(&format!("fault_{}", point.replace('.', "_")), *fired);
    }
    obj.finish()
}

fn trace_response(engine: &Engine) -> String {
    let spans = engine.spans();
    let mut arr = String::from("[");
    for (i, s) in spans.iter().enumerate() {
        if i > 0 {
            arr.push(',');
        }
        arr.push_str(&ligra_engine::span::span_to_json(s));
    }
    arr.push(']');
    JsonObj::new().bool("ok", true).u64("spans", spans.len() as u64).raw("trace", &arr).finish()
}

/// Handles one request line; the bool is "keep serving".
fn handle_line(
    engine: &Engine,
    log: &Arc<MutationLog>,
    metrics: &MetricsRegistry,
    conns: &ConnRegistry,
    line: &str,
) -> (String, bool) {
    let req = match Request::parse(line) {
        Ok(r) => r,
        Err(e) => {
            metrics.wire_malformed.incr();
            return (error_response(&e), true);
        }
    };
    let op = match req.str("op") {
        Ok(op) => op,
        Err(e) => {
            metrics.wire_malformed.incr();
            return (error_response(&e), true);
        }
    };
    let resp = match op {
        "load" => replicated_write(&req, engine, conns, || {
            let path = req.str("path")?;
            let symmetric = req.bool_or("symmetric", true)?;
            let weighted = req.bool_or("weighted", false)?;
            load_into(engine, path, symmetric, weighted).map(graph_response)
        }),
        "gen" => replicated_write(&req, engine, conns, || {
            let g = generate(&req)?;
            let (n, m) = (g.num_vertices(), g.num_edges());
            let epoch = if req.bool_or("weighted", false)? {
                let max_w = req.u64_or("max_w", 20)? as i32;
                let wg = random_weights(&g, max_w, req.u64_or("seed", 1)?);
                engine.install_weighted(Arc::new(wg))
            } else {
                engine.install_graph(Arc::new(g))
            };
            Ok(JsonObj::new()
                .bool("ok", true)
                .u64("epoch", epoch)
                .u64("vertices", n as u64)
                .u64("edges", m as u64)
                .finish())
        }),
        "submit" => (|| {
            let query = query_from(&req)?;
            let deadline = match req.get("deadline_ms") {
                None => None,
                Some(_) => Some(Duration::from_millis(req.u64_or("deadline_ms", 0)?)),
            };
            let trace_id = match req.get("trace_id") {
                None => None,
                Some(_) => Some(req.str("trace_id")?.to_string()),
            };
            match engine.submit_traced(query, deadline, trace_id) {
                Ok(h) => Ok(status_response(&h).finish()),
                Err(SubmitError::QueueFull) => Ok(JsonObj::new()
                    .bool("ok", false)
                    .str("error", "queue full")
                    .bool("transient", true)
                    .finish()),
                Err(SubmitError::Overloaded { retry_after }) => Ok(JsonObj::new()
                    .bool("ok", false)
                    .str("error", "engine overloaded")
                    .bool("transient", true)
                    .u64(
                        "retry_after_ms",
                        u64::try_from(retry_after.as_millis()).unwrap_or(u64::MAX),
                    )
                    .finish()),
                Err(SubmitError::NoGraph) => Err("no graph installed".to_string()),
            }
        })(),
        "poll" | "wait" | "cancel" => (|| {
            let id = req.u64_or("id", 0)?;
            let h = engine.handle(id).ok_or_else(|| format!("unknown id {id}"))?;
            match op {
                "cancel" => h.cancel(),
                "wait" => {
                    let _ = h.wait();
                }
                _ => {}
            }
            Ok(status_response(&h).finish())
        })(),
        "span" => Ok(span_response(engine, req.u64_or("id", 0).unwrap_or(0))),
        "mutate" => replicated_write(&req, engine, conns, || mutate_response(log, &req)),
        "compact" => replicated_write(&req, engine, conns, || compact_response(log, &req)),
        "graph-stats" | "graph_stats" => Ok(graph_stats_response(engine, log)),
        "stats" => Ok(stats_response(engine, conns)),
        "metrics" => Ok(metrics_response(engine)),
        "trace" => Ok(trace_response(engine)),
        "ping" => Ok(JsonObj::new().bool("ok", true).str("pong", "ligra-serve").finish()),
        "shutdown" => {
            return (JsonObj::new().bool("ok", true).str("status", "shutting-down").finish(), false)
        }
        other => Err(format!("unknown op {other:?}")),
    };
    (resp.unwrap_or_else(|e| error_response(&e)), true)
}

/// Checks the `wire.read` fault point; a contained injection becomes an
/// error-response line, never a torn-down connection. The response is
/// flagged `"transient":true` — the fault plan is hit-scheduled, so a
/// retried request lands on a fresh hit and normally succeeds.
#[cfg(feature = "fault-inject")]
fn wire_fault(engine: &Engine) -> Option<String> {
    use std::panic::{catch_unwind, AssertUnwindSafe};
    let plan = engine.fault_plan()?;
    let msg = match catch_unwind(AssertUnwindSafe(|| plan.check(ligra::FaultPoint::WireRead))) {
        Ok(Ok(())) => return None,
        Ok(Err(e)) => e.to_string(),
        Err(payload) => ligra_engine::error::classify_panic(payload.as_ref()).to_string(),
    };
    Some(JsonObj::new().bool("ok", false).str("error", &msg).bool("transient", true).finish())
}

fn serve_stream<R: BufRead, W: Write>(
    engine: &Engine,
    log: &Arc<MutationLog>,
    conns: &ConnRegistry,
    mut reader: R,
    mut writer: W,
) -> bool {
    conns.open();
    let metrics = engine.metrics();
    loop {
        let line = match read_request_line(&mut reader, MAX_REQUEST_LINE_BYTES) {
            Ok(None) => break, // clean EOF
            Err(_) => break,   // transport failure; nothing to answer on
            Ok(Some(Err(e))) => {
                // Oversized or non-UTF-8 line: answer and keep serving.
                metrics.wire_requests.incr();
                metrics.wire_malformed.incr();
                if write_response(&mut writer, &error_response(&e)).is_err() {
                    break;
                }
                continue;
            }
            Ok(Some(Ok(l))) => l,
        };
        // Count the newline the reader consumed along with the line.
        metrics.wire_bytes.add(line.len() as u64 + 1);
        if line.trim().is_empty() {
            continue;
        }
        metrics.wire_requests.incr();
        #[cfg(feature = "fault-inject")]
        if let Some(resp) = wire_fault(engine) {
            if write_response(&mut writer, &resp).is_err() {
                break;
            }
            continue;
        }
        let (resp, keep_going) = handle_line(engine, log, &metrics, conns, &line);
        if write_response(&mut writer, &resp).is_err() {
            break;
        }
        if !keep_going {
            conns.close();
            return false;
        }
    }
    conns.close();
    true
}

fn write_response<W: Write>(writer: &mut W, resp: &str) -> std::io::Result<()> {
    writeln!(writer, "{resp}").and_then(|()| writer.flush())
}

/// Answers one Prometheus scrape: drains the request head (the path is
/// ignored — this endpoint serves exactly one document), then writes
/// the exposition with HTTP/1.0 framing and closes.
fn answer_scrape(engine: &Engine, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    reader.read_line(&mut line)?; // request line
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header)? == 0 || header == "\r\n" || header == "\n" {
            break;
        }
    }
    let body = render(&engine.metrics_snapshot());
    let mut w = BufWriter::new(stream);
    write!(
        w,
        "HTTP/1.0 200 OK\r\n\
         Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n\
         Content-Length: {}\r\n\
         Connection: close\r\n\r\n{}",
        body.len(),
        body
    )?;
    w.flush()
}

/// Binds the metrics listener (fatal on failure — an operator who asked
/// for metrics should not silently run without them) and serves scrapes
/// on background threads.
fn spawn_metrics_listener(engine: Arc<Engine>, addr: &str) {
    let listener = TcpListener::bind(addr)
        .unwrap_or_else(|e| fatal(&format!("bind metrics addr {addr}: {e}")));
    match listener.local_addr() {
        Ok(a) => eprintln!("ligra-serve: metrics on http://{a}/metrics"),
        Err(_) => eprintln!("ligra-serve: metrics listener bound"),
    }
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(stream) = stream else { continue };
            let engine = Arc::clone(&engine);
            std::thread::spawn(move || {
                if let Err(e) = answer_scrape(&engine, stream) {
                    eprintln!("ligra-serve: metrics scrape: {e}");
                }
            });
        }
    });
}

/// Client-side retry budget for responses flagged `"transient":true`
/// (overload sheds, queue-full, injected transient faults).
const CLIENT_RETRIES: u32 = 3;

fn run_client(addr: &str) {
    let stream =
        TcpStream::connect(addr).unwrap_or_else(|e| fatal(&format!("connect {addr}: {e}")));
    let mut reader =
        BufReader::new(stream.try_clone().unwrap_or_else(|e| fatal(&format!("clone stream: {e}"))));
    let mut writer = BufWriter::new(stream);
    let stdin = std::io::stdin();
    for (line_no, line) in stdin.lock().lines().enumerate() {
        let line = line.unwrap_or_else(|e| fatal(&format!("read stdin: {e}")));
        if line.trim().is_empty() {
            continue;
        }
        let mut attempt = 0u32;
        loop {
            if writeln!(writer, "{line}").and_then(|()| writer.flush()).is_err() {
                fatal("send request: connection lost");
            }
            let mut resp = String::new();
            match reader.read_line(&mut resp) {
                Err(e) => fatal(&format!("read response: {e}")),
                Ok(0) => return,
                Ok(_) => {}
            }
            // Transient shed (overload, queue-full, injected fault):
            // honor the server's retry-after hint when present, else
            // the shared jittered exponential backoff schedule
            // (`ligra_engine::backoff`), up to the retry budget.
            if resp.contains("\"transient\":true") && attempt < CLIENT_RETRIES {
                let delay = Backoff::serve_client(line_no as u64)
                    .delay_with_hint(attempt, retry_after_ms(&resp));
                attempt += 1;
                eprintln!(
                    "ligra-serve: transient failure, retry {attempt}/{CLIENT_RETRIES} \
                     in {} ms",
                    delay.as_millis()
                );
                std::thread::sleep(delay);
                continue;
            }
            print!("{resp}");
            break;
        }
    }
}

/// Graceful stop (DESIGN.md §16): flip the accept-gate, wait for the
/// scheduler to go quiet (nothing queued, nothing running) up to the
/// drain deadline, then exit 0 — so chaos scripts can tell a clean
/// stop from a crash by the exit code alone. Queries still running at
/// the deadline are abandoned with a warning rather than blocking the
/// stop forever.
fn drain_and_exit(engine: &Engine, deadline: Duration) -> ! {
    SHUTTING_DOWN.store(true, std::sync::atomic::Ordering::Release);
    eprintln!("ligra-serve: draining in-flight queries (deadline {} ms)", deadline.as_millis());
    let drained = drain_until(
        || {
            let s = engine.stats();
            s.queued == 0 && s.running == 0
        },
        deadline,
    );
    if drained {
        eprintln!("ligra-serve: drained; exiting");
    } else {
        eprintln!("ligra-serve: drain deadline hit with queries still in flight; exiting");
    }
    std::process::exit(0);
}

/// Accept-gate for graceful shutdown: once set, newly accepted
/// connections are dropped unanswered while the drain completes.
static SHUTTING_DOWN: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);

/// Builds the engine's fault plan from `--fault` specs. The flag is
/// rejected at startup when the hooks are compiled out, so an operator
/// can't arm faults that would silently never fire.
fn build_fault_plan(args: &Args) -> Result<Option<Arc<FaultPlan>>, String> {
    if args.fault_specs.is_empty() {
        return Ok(None);
    }
    if !cfg!(feature = "fault-inject") {
        return Err(
            "--fault requires a ligra-serve build with the fault-inject feature".to_string()
        );
    }
    let mut plan = FaultPlan::seeded(args.fault_seed);
    for spec in &args.fault_specs {
        plan = plan.arm_spec(spec).map_err(|e| format!("--fault {spec:?}: {e}"))?;
    }
    Ok(Some(Arc::new(plan)))
}

fn main() {
    let args = parse_args();
    if let Some(addr) = &args.client {
        run_client(addr);
        return;
    }

    let fault = match build_fault_plan(&args) {
        Ok(f) => f,
        Err(e) => fatal(&e),
    };
    let trace_dir = std::env::var("LIGRA_TRACE_DIR").ok().map(std::path::PathBuf::from);
    if let Some(dir) = &trace_dir {
        if let Err(e) = std::fs::create_dir_all(dir) {
            fatal(&format!("create LIGRA_TRACE_DIR {}: {e}", dir.display()));
        }
        eprintln!("ligra-serve: writing kernel traces to {}", dir.display());
    }
    let engine = Arc::new(Engine::new(EngineConfig {
        workers: args.workers,
        queue_capacity: args.queue,
        cache_capacity: args.cache,
        default_deadline: None,
        traversal: args.traversal,
        memory_budget: args.memory_budget,
        fault,
        trace_dir,
    }));
    let log = Arc::new(MutationLog::new(
        Arc::clone(&engine),
        MutationConfig { compact_threshold: args.compact_threshold },
    ));
    let conns = Arc::new(ConnRegistry::default());
    if let Some(addr) = &args.metrics_addr {
        spawn_metrics_listener(Arc::clone(&engine), addr);
    }
    if let Some(path) = &args.graph {
        let epoch = load_into(&engine, path, args.symmetric, args.weighted)
            .unwrap_or_else(|e| fatal(&format!("preload {path}: {e}")));
        eprintln!("ligra-serve: loaded {path} at epoch {epoch}");
    }

    // SIGTERM gets the same drain-then-exit-0 treatment as the
    // `shutdown` wire op: a watcher thread polls the async-signal-safe
    // latch, so chaos scripts can `kill` for a clean stop and `kill
    // -9` for a crash.
    install_sigterm_latch();
    {
        let engine = Arc::clone(&engine);
        let deadline = args.drain_deadline;
        std::thread::spawn(move || loop {
            if sigterm_received() {
                eprintln!("ligra-serve: SIGTERM received");
                drain_and_exit(&engine, deadline);
            }
            std::thread::sleep(Duration::from_millis(50));
        });
    }

    match &args.listen {
        None => {
            let stdin = std::io::stdin();
            let stdout = std::io::stdout();
            let keep = serve_stream(&engine, &log, &conns, stdin.lock(), stdout.lock());
            if !keep {
                drain_and_exit(&engine, args.drain_deadline);
            }
        }
        Some(addr) => {
            let listener =
                TcpListener::bind(addr).unwrap_or_else(|e| fatal(&format!("bind {addr}: {e}")));
            eprintln!(
                "ligra-serve: listening on {}",
                listener.local_addr().expect("bound listener has a local addr")
            );
            for stream in listener.incoming() {
                let stream = match stream {
                    Ok(s) => s,
                    Err(_) => continue,
                };
                if SHUTTING_DOWN.load(std::sync::atomic::Ordering::Acquire) {
                    // Draining: acknowledge nothing, accept no new work.
                    drop(stream);
                    continue;
                }
                let engine = Arc::clone(&engine);
                let log = Arc::clone(&log);
                let conns = Arc::clone(&conns);
                let deadline = args.drain_deadline;
                std::thread::spawn(move || {
                    let reader = BufReader::new(stream.try_clone().expect("clone stream"));
                    let keep = serve_stream(&engine, &log, &conns, reader, BufWriter::new(stream));
                    if !keep {
                        // `shutdown` was acknowledged and flushed; stop
                        // accepting, drain in-flight queries, exit 0.
                        drain_and_exit(&engine, deadline);
                    }
                });
            }
        }
    }
}
