//! `bench_engine`: closed-loop load generator for the query engine.
//!
//! For each concurrency level, spawns that many client threads; every
//! client submits a query drawn round-robin from a small mix, waits for
//! it, and immediately submits the next — classic closed-loop load. Per
//! level it reports throughput and queue-wait/turnaround percentiles,
//! plus how many queries were rejected, cancelled, or missed their
//! deadline, to stdout and `BENCH_engine.json`.
//!
//! ```text
//! bench_engine [--quick] [--out PATH]
//! ```
//!
//! `LIGRA_SCALE=small|paper` and `LIGRA_TRAVERSAL=...` are honored like
//! the other bench binaries; `--quick` is the small CI configuration.

use ligra::Traversal;
use ligra_engine::metrics::Histogram;
use ligra_engine::{Engine, EngineConfig, Query, QueryStatus, SubmitError};
use ligra_graph::generators::{rmat, RmatOptions};
use ligra_parallel::checked_u32;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct LevelResult {
    concurrency: usize,
    queries: u64,
    rejected: u64,
    cancelled: u64,
    deadline_misses: u64,
    elapsed_s: f64,
    throughput_qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    queue_wait_p95_ms: f64,
    // Same turnaround distribution, but read back out of the engine's
    // log-bucketed metrics histogram — what a scrape would report.
    hist_p50_ms: f64,
    hist_p95_ms: f64,
    hist_p99_ms: f64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// The per-client query mix: cheap point lookups with a couple of
/// heavier analytics sprinkled in, sources spread across the graph.
fn pick_query(i: u64, n: u32) -> Query {
    match i % 8 {
        0..=2 => Query::Bfs { source: checked_u32(i.wrapping_mul(2654435761) % n as u64) },
        3 | 4 => Query::Bc { source: checked_u32(i.wrapping_mul(40503) % n as u64) },
        5 => Query::Cc,
        6 => Query::PageRank { iters: 5 },
        _ => Query::Radii { seed: i },
    }
}

fn run_level(
    engine: &Arc<Engine>,
    level_idx: usize,
    concurrency: usize,
    per_client: u64,
    deadline: Duration,
    n: u32,
) -> LevelResult {
    let rejected = AtomicU64::new(0);
    let cancelled = AtomicU64::new(0);
    let deadline_misses = AtomicU64::new(0);
    // Per-level turnaround histogram (satellite of the metrics PR): the
    // exact sampled percentiles below are ground truth; this one shows
    // what the engine's bucketed histograms would report for the same
    // distribution, so BENCH_engine.json documents the bucket error.
    let turnaround_hist = Histogram::new();
    let start = Instant::now();
    let mut turnaround_ms: Vec<f64> = Vec::new();
    let mut queue_wait_ms: Vec<f64> = Vec::new();

    std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for c in 0..concurrency {
            let engine = Arc::clone(engine);
            let rejected = &rejected;
            let cancelled = &cancelled;
            let deadline_misses = &deadline_misses;
            let turnaround_hist = &turnaround_hist;
            clients.push(scope.spawn(move || {
                let mut turnaround = Vec::with_capacity(per_client as usize);
                let mut queue_wait = Vec::with_capacity(per_client as usize);
                for i in 0..per_client {
                    // Salt the stream per (level, client) so the cache sees
                    // some repeats (Cc, PageRank) without absorbing the
                    // whole sweep.
                    let q = pick_query((level_idx as u64 * 131 + c as u64) * per_client + i, n);
                    let t0 = Instant::now();
                    let h = match engine.submit(q, Some(deadline)) {
                        Ok(h) => h,
                        Err(SubmitError::QueueFull | SubmitError::Overloaded { .. }) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        Err(e) => fatal(&format!("submit failed: {e}")),
                    };
                    let status = h.wait();
                    let total = t0.elapsed();
                    turnaround.push(total.as_secs_f64() * 1e3);
                    turnaround_hist.record(total.as_nanos().min(u128::from(u64::MAX)) as u64);
                    if let Some(span) = h.span() {
                        queue_wait.push(span.queue_wait_ns as f64 / 1e6);
                    }
                    match status {
                        QueryStatus::Cancelled => {
                            cancelled.fetch_add(1, Ordering::Relaxed);
                            // A deadline miss is a cancel we didn't ask for.
                            deadline_misses.fetch_add(1, Ordering::Relaxed);
                        }
                        QueryStatus::Shed => {
                            // Queue wait ate the whole deadline before the
                            // query ever ran: a deadline miss by another name.
                            deadline_misses.fetch_add(1, Ordering::Relaxed);
                        }
                        QueryStatus::Done => {
                            if total > deadline + Duration::from_millis(50) {
                                // Finished, but starved well past its deadline
                                // without the token tripping — flag it.
                                deadline_misses.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        s => fatal(&format!("unexpected terminal status {s}")),
                    }
                }
                (turnaround, queue_wait)
            }));
        }
        for cl in clients {
            let (t, q) = cl.join().expect("client thread");
            turnaround_ms.extend(t);
            queue_wait_ms.extend(q);
        }
    });

    let elapsed_s = start.elapsed().as_secs_f64();
    turnaround_ms.sort_by(|a, b| a.total_cmp(b));
    queue_wait_ms.sort_by(|a, b| a.total_cmp(b));
    let queries = turnaround_ms.len() as u64;
    let hist = turnaround_hist.snapshot();
    LevelResult {
        concurrency,
        queries,
        rejected: rejected.load(Ordering::Relaxed),
        cancelled: cancelled.load(Ordering::Relaxed),
        deadline_misses: deadline_misses.load(Ordering::Relaxed),
        elapsed_s,
        throughput_qps: queries as f64 / elapsed_s,
        p50_ms: percentile(&turnaround_ms, 0.50),
        p95_ms: percentile(&turnaround_ms, 0.95),
        p99_ms: percentile(&turnaround_ms, 0.99),
        queue_wait_p95_ms: percentile(&queue_wait_ms, 0.95),
        hist_p50_ms: hist.p50() as f64 / 1e6,
        hist_p95_ms: hist.p95() as f64 / 1e6,
        hist_p99_ms: hist.p99() as f64 / 1e6,
    }
}

/// Operator-facing fatal error: report and exit instead of panicking
/// (lint L6 bans panics across the engine crate, binaries included).
fn fatal(msg: &str) -> ! {
    eprintln!("bench_engine: {msg}");
    std::process::exit(2);
}

fn main() {
    let mut quick = std::env::var("LIGRA_SCALE").is_ok_and(|s| s == "small");
    let mut out_path = String::from("BENCH_engine.json");
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = it.next().unwrap_or_else(|| fatal("--out needs a value")),
            other => fatal(&format!("unknown flag {other:?}")),
        }
    }
    let traversal: Traversal = std::env::var("LIGRA_TRAVERSAL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(Traversal::Auto);

    let (log_n, per_client, deadline_ms) = if quick { (11, 12, 10_000) } else { (14, 24, 30_000) };
    let workers = ligra_parallel::utils::num_threads().clamp(2, 8);
    let mut levels: Vec<usize> =
        [1usize, 2, 4, 8, workers * 2].into_iter().filter(|&c| c <= workers * 2).collect();
    levels.dedup();

    let g = rmat(&RmatOptions::paper(log_n));
    let n = checked_u32(g.num_vertices());
    let m = g.num_edges();
    eprintln!(
        "bench_engine: rmat 2^{log_n} ({n} vertices, {m} edges), {workers} workers, \
         traversal {traversal}, deadline {deadline_ms} ms"
    );

    let engine = Arc::new(Engine::new(EngineConfig {
        workers,
        queue_capacity: 256,
        cache_capacity: 64,
        default_deadline: None,
        traversal,
        memory_budget: None,
        fault: None,
        trace_dir: None,
    }));
    engine.install_graph(Arc::new(g));

    // Warm-up on a salt no level uses, so level 1 isn't pre-cached.
    for i in 0..8 {
        let h = engine.submit(pick_query(0x00dd_0000 + i, n), None).expect("warmup submit");
        assert_eq!(h.wait(), QueryStatus::Done);
    }

    let deadline = Duration::from_millis(deadline_ms);
    let mut results = Vec::new();
    for (li, &c) in levels.iter().enumerate() {
        let r = run_level(&engine, li, c, per_client, deadline, n);
        eprintln!(
            "  c={:<3} {:>6.1} q/s  p50 {:>7.2} ms  p95 {:>7.2} ms  p99 {:>7.2} ms  \
             queue-wait p95 {:>7.2} ms  rejected {}  deadline-misses {}",
            r.concurrency,
            r.throughput_qps,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.queue_wait_p95_ms,
            r.rejected,
            r.deadline_misses,
        );
        results.push(r);
    }

    let stats = engine.stats();
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"graph\": {{\"family\": \"rmat\", \"log_n\": {log_n}, \"vertices\": {n}, \
         \"edges\": {m}}},\n  \"workers\": {workers},\n  \"traversal\": \"{traversal}\",\n  \
         \"deadline_ms\": {deadline_ms},\n  \"per_client\": {per_client},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"levels\": [\n",
        stats.cache_hits, stats.cache_misses
    ));
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"concurrency\": {}, \"queries\": {}, \"rejected\": {}, \"cancelled\": {}, \
             \"deadline_misses\": {}, \"elapsed_s\": {:.3}, \"throughput_qps\": {:.2}, \
             \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"queue_wait_p95_ms\": {:.3}, \
             \"hist_p50_ms\": {:.3}, \"hist_p95_ms\": {:.3}, \"hist_p99_ms\": {:.3}}}{}\n",
            r.concurrency,
            r.queries,
            r.rejected,
            r.cancelled,
            r.deadline_misses,
            r.elapsed_s,
            r.throughput_qps,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.queue_wait_p95_ms,
            r.hist_p50_ms,
            r.hist_p95_ms,
            r.hist_p99_ms,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write results");
    eprintln!("bench_engine: wrote {out_path}");

    // The point of concurrency: more clients must not mean less work done.
    let first = results.first().expect("at least one level");
    let best = results.iter().map(|r| r.throughput_qps).fold(0.0f64, f64::max);
    assert!(
        best >= first.throughput_qps * 0.9,
        "throughput collapsed under concurrency: best {best:.1} q/s vs single-client {:.1} q/s",
        first.throughput_qps
    );
    let starved: u64 = results.iter().map(|r| r.deadline_misses).sum();
    assert_eq!(starved, 0, "queries starved past their deadline");
}
