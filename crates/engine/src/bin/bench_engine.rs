//! `bench_engine`: closed-loop load generator for the query engine.
//!
//! For each concurrency level, spawns that many client threads; every
//! client submits a query drawn round-robin from a small mix, waits for
//! it, and immediately submits the next — classic closed-loop load. Per
//! level it reports throughput and queue-wait/turnaround percentiles,
//! plus how many queries were rejected, cancelled, or missed their
//! deadline, to stdout and `BENCH_engine.json`.
//!
//! ```text
//! bench_engine [--quick] [--out PATH] [--write-ratio R] [--router ADDR]
//! ```
//!
//! `LIGRA_SCALE=small|paper` and `LIGRA_TRAVERSAL=...` are honored like
//! the other bench binaries; `--quick` is the small CI configuration.
//!
//! `--router ADDR` switches to the scale-out serving sweep (EXPERIMENTS
//! A8): instead of an in-process engine, every client opens its own TCP
//! connection to a running `ligra-route` (or `ligra-serve`) address and
//! drives submit/wait pairs over the JSONL wire, so the numbers include
//! routing, replication fan-in, and wire framing. Reads only; the
//! target fleet is expected to be loaded (`gen` is issued through the
//! router once at startup). Incompatible with `--write-ratio`.
//!
//! `--write-ratio R` (0.0–1.0, default 0.0) mixes writes into the load:
//! before each query, a client rolls `R` and on success applies a small
//! edge-churn batch through one shared [`MutationLog`] — so every write
//! publishes a new epoch while readers keep hammering the store. The
//! report then carries, per level, mutation-apply latency percentiles
//! and how many epochs the level published, plus the end-of-run
//! compaction count. `--write-ratio 0` is byte-identical to the classic
//! read-only sweep.

use ligra::Traversal;
use ligra_engine::metrics::{mix64, Histogram};
use ligra_engine::{
    Engine, EngineConfig, MutationConfig, MutationLog, Query, QueryStatus, SubmitError,
};
use ligra_graph::generators::{rmat, RmatOptions};
use ligra_graph::DeltaBatch;
use ligra_parallel::checked_u32;
use std::io::Write;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct LevelResult {
    concurrency: usize,
    queries: u64,
    rejected: u64,
    cancelled: u64,
    deadline_misses: u64,
    elapsed_s: f64,
    throughput_qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
    queue_wait_p95_ms: f64,
    // Same turnaround distribution, but read back out of the engine's
    // log-bucketed metrics histogram — what a scrape would report.
    hist_p50_ms: f64,
    hist_p95_ms: f64,
    hist_p99_ms: f64,
    // Mixed read/write sweep (--write-ratio > 0): applied batches, their
    // apply-latency distribution, writes shed by admission, and the
    // epochs this level published. All zero on a read-only run.
    mutations: u64,
    writes_shed: u64,
    mutation_p50_ms: f64,
    mutation_p95_ms: f64,
    mutation_max_ms: f64,
    epochs_published: u64,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// The per-client query mix: cheap point lookups with a couple of
/// heavier analytics sprinkled in, sources spread across the graph.
fn pick_query(i: u64, n: u32) -> Query {
    match i % 8 {
        0..=2 => Query::Bfs { source: checked_u32(i.wrapping_mul(2654435761) % n as u64) },
        3 | 4 => Query::Bc { source: checked_u32(i.wrapping_mul(40503) % n as u64) },
        5 => Query::Cc,
        6 => Query::PageRank { iters: 5 },
        _ => Query::Radii { seed: i },
    }
}

/// The per-write mutation: a couple of random arcs churned inside the
/// existing id space, so readers' sources stay valid. Deterministic in
/// the stream index.
fn pick_batch(stream: u64, n: u32) -> DeltaBatch {
    let pick = |salt: u64| checked_u32(mix64(stream ^ salt) % n as u64);
    let (u, v) = (pick(0x5eed), pick(0xbeef));
    let (u, v) = if u == v { (u, (v + 1) % n) } else { (u, v) };
    if mix64(stream ^ 0xde1).is_multiple_of(4) {
        DeltaBatch::new().del_edge(u, v)
    } else {
        DeltaBatch::new().add_edge(u, v)
    }
}

#[allow(clippy::too_many_arguments)]
fn run_level(
    engine: &Arc<Engine>,
    log: &Arc<MutationLog>,
    write_ratio: f64,
    level_idx: usize,
    concurrency: usize,
    per_client: u64,
    deadline: Duration,
    n: u32,
) -> LevelResult {
    let rejected = AtomicU64::new(0);
    let cancelled = AtomicU64::new(0);
    let deadline_misses = AtomicU64::new(0);
    let writes_shed = AtomicU64::new(0);
    let epoch_at_start = engine.current_epoch().unwrap_or(0);
    // Per-level turnaround histogram (satellite of the metrics PR): the
    // exact sampled percentiles below are ground truth; this one shows
    // what the engine's bucketed histograms would report for the same
    // distribution, so BENCH_engine.json documents the bucket error.
    let turnaround_hist = Histogram::new();
    let start = Instant::now();
    let mut turnaround_ms: Vec<f64> = Vec::new();
    let mut queue_wait_ms: Vec<f64> = Vec::new();
    let mut mutation_ms: Vec<f64> = Vec::new();

    std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for c in 0..concurrency {
            let engine = Arc::clone(engine);
            let log = Arc::clone(log);
            let rejected = &rejected;
            let cancelled = &cancelled;
            let deadline_misses = &deadline_misses;
            let writes_shed = &writes_shed;
            let turnaround_hist = &turnaround_hist;
            clients.push(scope.spawn(move || {
                let mut turnaround = Vec::with_capacity(per_client as usize);
                let mut queue_wait = Vec::with_capacity(per_client as usize);
                let mut mutation = Vec::new();
                for i in 0..per_client {
                    // Salt the stream per (level, client) so the cache sees
                    // some repeats (Cc, PageRank) without absorbing the
                    // whole sweep.
                    let stream = (level_idx as u64 * 131 + c as u64) * per_client + i;
                    if write_ratio > 0.0
                        && (mix64(stream ^ 0x13a7) % 1_000_000) as f64 / 1e6 < write_ratio
                    {
                        let batch = pick_batch(stream, n);
                        let w0 = Instant::now();
                        match log.apply(&batch) {
                            Ok(_) => mutation.push(w0.elapsed().as_secs_f64() * 1e3),
                            Err(e) if e.is_transient() => {
                                writes_shed.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => fatal(&format!("mutation failed: {e}")),
                        }
                    }
                    let q = pick_query(stream, n);
                    let t0 = Instant::now();
                    let h = match engine.submit(q, Some(deadline)) {
                        Ok(h) => h,
                        Err(SubmitError::QueueFull | SubmitError::Overloaded { .. }) => {
                            rejected.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        Err(e) => fatal(&format!("submit failed: {e}")),
                    };
                    let status = h.wait();
                    let total = t0.elapsed();
                    turnaround.push(total.as_secs_f64() * 1e3);
                    turnaround_hist.record(total.as_nanos().min(u128::from(u64::MAX)) as u64);
                    if let Some(span) = h.span() {
                        queue_wait.push(span.queue_wait_ns as f64 / 1e6);
                    }
                    match status {
                        QueryStatus::Cancelled => {
                            cancelled.fetch_add(1, Ordering::Relaxed);
                            // A deadline miss is a cancel we didn't ask for.
                            deadline_misses.fetch_add(1, Ordering::Relaxed);
                        }
                        QueryStatus::Shed => {
                            // Queue wait ate the whole deadline before the
                            // query ever ran: a deadline miss by another name.
                            deadline_misses.fetch_add(1, Ordering::Relaxed);
                        }
                        QueryStatus::Done => {
                            if total > deadline + Duration::from_millis(50) {
                                // Finished, but starved well past its deadline
                                // without the token tripping — flag it.
                                deadline_misses.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        s => fatal(&format!("unexpected terminal status {s}")),
                    }
                }
                (turnaround, queue_wait, mutation)
            }));
        }
        for cl in clients {
            let (t, q, w) = cl.join().expect("client thread");
            turnaround_ms.extend(t);
            queue_wait_ms.extend(q);
            mutation_ms.extend(w);
        }
    });

    let elapsed_s = start.elapsed().as_secs_f64();
    turnaround_ms.sort_by(|a, b| a.total_cmp(b));
    queue_wait_ms.sort_by(|a, b| a.total_cmp(b));
    mutation_ms.sort_by(|a, b| a.total_cmp(b));
    let queries = turnaround_ms.len() as u64;
    let hist = turnaround_hist.snapshot();
    LevelResult {
        concurrency,
        queries,
        rejected: rejected.load(Ordering::Relaxed),
        cancelled: cancelled.load(Ordering::Relaxed),
        deadline_misses: deadline_misses.load(Ordering::Relaxed),
        elapsed_s,
        throughput_qps: queries as f64 / elapsed_s,
        p50_ms: percentile(&turnaround_ms, 0.50),
        p95_ms: percentile(&turnaround_ms, 0.95),
        p99_ms: percentile(&turnaround_ms, 0.99),
        queue_wait_p95_ms: percentile(&queue_wait_ms, 0.95),
        hist_p50_ms: hist.p50() as f64 / 1e6,
        hist_p95_ms: hist.p95() as f64 / 1e6,
        hist_p99_ms: hist.p99() as f64 / 1e6,
        mutations: mutation_ms.len() as u64,
        writes_shed: writes_shed.load(Ordering::Relaxed),
        mutation_p50_ms: percentile(&mutation_ms, 0.50),
        mutation_p95_ms: percentile(&mutation_ms, 0.95),
        mutation_max_ms: mutation_ms.last().copied().unwrap_or(0.0),
        epochs_published: engine.current_epoch().unwrap_or(0).saturating_sub(epoch_at_start),
    }
}

/// Operator-facing fatal error: report and exit instead of panicking
/// (lint L6 bans panics across the engine crate, binaries included).
fn fatal(msg: &str) -> ! {
    eprintln!("bench_engine: {msg}");
    std::process::exit(2);
}

// ---- --router mode: closed-loop sweep over the JSONL wire ------------

/// One line-oriented JSONL connection to the serving tier.
struct WireClient {
    reader: std::io::BufReader<std::net::TcpStream>,
}

impl WireClient {
    fn connect(addr: &str) -> std::io::Result<WireClient> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(WireClient { reader: std::io::BufReader::new(stream) })
    }

    /// One request/response exchange; the response comes back trimmed.
    fn call(&mut self, line: &str) -> std::io::Result<String> {
        use std::io::BufRead;
        let stream = self.reader.get_mut();
        stream.write_all(format!("{line}\n").as_bytes())?;
        let mut resp = String::new();
        if self.reader.read_line(&mut resp)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        resp.truncate(resp.trim_end().len());
        Ok(resp)
    }
}

fn wire_u64(resp: &str, key: &str) -> Option<u64> {
    let rest = resp.split_once(&format!("\"{key}\":"))?.1;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

struct WireLevel {
    concurrency: usize,
    queries: u64,
    transient_retries: u64,
    elapsed_s: f64,
    throughput_qps: f64,
    p50_ms: f64,
    p95_ms: f64,
    p99_ms: f64,
}

/// Reads-only closed-loop sweep against a live `ligra-route` (or
/// `ligra-serve`) address: per concurrency level, each client drives
/// submit/wait pairs over its own TCP connection. Transient sheds are
/// retried after the hinted backoff and counted; any hard error fails
/// the run.
fn run_router_sweep(addr: &str, quick: bool, out_path: &str) {
    let (log_n, per_client) = if quick { (10u32, 24u64) } else { (12, 96) };
    let levels: &[usize] = if quick { &[1, 2, 4] } else { &[1, 2, 4, 8] };

    let mut setup =
        WireClient::connect(addr).unwrap_or_else(|e| fatal(&format!("connect {addr}: {e}")));
    let gen = setup
        .call(&format!("{{\"op\":\"gen\",\"family\":\"rmat\",\"log_n\":{log_n}}}"))
        .unwrap_or_else(|e| fatal(&format!("gen via router: {e}")));
    if !gen.contains("\"ok\":true") {
        fatal(&format!("gen via router rejected: {gen}"));
    }
    let n = wire_u64(&gen, "vertices")
        .unwrap_or_else(|| fatal(&format!("gen response lacks vertices: {gen}")));
    eprintln!("bench_engine: router sweep against {addr}, rmat 2^{log_n} ({n} vertices)");

    let mut results = Vec::new();
    for &concurrency in levels {
        let transient_retries = AtomicU64::new(0);
        let start = Instant::now();
        let mut turnaround_ms: Vec<f64> = Vec::new();
        std::thread::scope(|scope| {
            let mut clients = Vec::new();
            for c in 0..concurrency {
                let transient_retries = &transient_retries;
                clients.push(scope.spawn(move || {
                    let mut conn = WireClient::connect(addr)
                        .unwrap_or_else(|e| fatal(&format!("client connect {addr}: {e}")));
                    let mut samples = Vec::with_capacity(per_client as usize);
                    for i in 0..per_client {
                        let source = mix64(c as u64 ^ i.wrapping_mul(0x9e37)) % n;
                        let t0 = Instant::now();
                        let line =
                            format!("{{\"op\":\"submit\",\"query\":\"bfs\",\"source\":{source}}}");
                        let resp = loop {
                            let r =
                                conn.call(&line).unwrap_or_else(|e| fatal(&format!("submit: {e}")));
                            if r.contains("\"transient\":true") {
                                transient_retries.fetch_add(1, Ordering::Relaxed);
                                let ms = wire_u64(&r, "retry_after_ms").unwrap_or(20).min(500);
                                std::thread::sleep(Duration::from_millis(ms));
                                continue;
                            }
                            break r;
                        };
                        let id = wire_u64(&resp, "id")
                            .unwrap_or_else(|| fatal(&format!("submit rejected: {resp}")));
                        let done = conn
                            .call(&format!("{{\"op\":\"wait\",\"id\":{id}}}"))
                            .unwrap_or_else(|e| fatal(&format!("wait: {e}")));
                        if !done.contains("\"ok\":true") {
                            fatal(&format!("wait failed: {done}"));
                        }
                        samples.push(t0.elapsed().as_secs_f64() * 1e3);
                    }
                    samples
                }));
            }
            for cl in clients {
                turnaround_ms.extend(cl.join().expect("client thread"));
            }
        });
        let elapsed_s = start.elapsed().as_secs_f64();
        turnaround_ms.sort_by(|a, b| a.total_cmp(b));
        let queries = turnaround_ms.len() as u64;
        let r = WireLevel {
            concurrency,
            queries,
            transient_retries: transient_retries.load(Ordering::Relaxed),
            elapsed_s,
            throughput_qps: queries as f64 / elapsed_s,
            p50_ms: percentile(&turnaround_ms, 0.50),
            p95_ms: percentile(&turnaround_ms, 0.95),
            p99_ms: percentile(&turnaround_ms, 0.99),
        };
        eprintln!(
            "  c={:<3} {:>6.1} q/s  p50 {:>7.2} ms  p95 {:>7.2} ms  p99 {:>7.2} ms  \
             transient-retries {}",
            r.concurrency, r.throughput_qps, r.p50_ms, r.p95_ms, r.p99_ms, r.transient_retries,
        );
        results.push(r);
    }

    // Router-side counters for the report; absent (empty) when the
    // target is a bare ligra-serve rather than a router.
    let route_stats = setup.call("{\"op\":\"route-stats\"}").unwrap_or_default();
    let route_stats = if route_stats.contains("\"ok\":true") { route_stats } else { String::new() };

    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"router\": \"{addr}\",\n  \"graph\": {{\"family\": \"rmat\", \"log_n\": {log_n}, \
         \"vertices\": {n}}},\n  \"per_client\": {per_client},\n  \"levels\": [\n"
    ));
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"concurrency\": {}, \"queries\": {}, \"transient_retries\": {}, \
             \"elapsed_s\": {:.3}, \"throughput_qps\": {:.2}, \"p50_ms\": {:.3}, \
             \"p95_ms\": {:.3}, \"p99_ms\": {:.3}}}{}\n",
            r.concurrency,
            r.queries,
            r.transient_retries,
            r.elapsed_s,
            r.throughput_qps,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"route_stats\": {}\n}}\n",
        if route_stats.is_empty() { "null".to_string() } else { route_stats }
    ));
    let mut f = std::fs::File::create(out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write results");
    eprintln!("bench_engine: wrote {out_path}");

    let first = results.first().expect("at least one level");
    let best = results.iter().map(|r| r.throughput_qps).fold(0.0f64, f64::max);
    if best < first.throughput_qps * 0.9 {
        fatal(&format!(
            "throughput collapsed under concurrency: best {best:.1} q/s vs single-client {:.1} q/s",
            first.throughput_qps
        ));
    }
}

fn main() {
    let mut quick = std::env::var("LIGRA_SCALE").is_ok_and(|s| s == "small");
    let mut out_path = String::from("BENCH_engine.json");
    let mut write_ratio = 0.0f64;
    let mut router: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => out_path = it.next().unwrap_or_else(|| fatal("--out needs a value")),
            "--router" => {
                router = Some(it.next().unwrap_or_else(|| fatal("--router needs a value")))
            }
            "--write-ratio" => {
                let raw = it.next().unwrap_or_else(|| fatal("--write-ratio needs a value"));
                write_ratio = raw
                    .parse()
                    .unwrap_or_else(|_| fatal(&format!("--write-ratio: cannot parse {raw:?}")));
                if !(0.0..=1.0).contains(&write_ratio) {
                    fatal("--write-ratio must be in 0.0..=1.0");
                }
            }
            other => fatal(&format!("unknown flag {other:?}")),
        }
    }
    if let Some(addr) = router {
        if write_ratio > 0.0 {
            fatal("--router is a reads-only sweep; --write-ratio is not supported");
        }
        run_router_sweep(&addr, quick, &out_path);
        return;
    }
    let traversal: Traversal = std::env::var("LIGRA_TRAVERSAL")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(Traversal::Auto);

    let (log_n, per_client, deadline_ms) = if quick { (11, 12, 10_000) } else { (14, 24, 30_000) };
    let workers = ligra_parallel::utils::num_threads().clamp(2, 8);
    let mut levels: Vec<usize> =
        [1usize, 2, 4, 8, workers * 2].into_iter().filter(|&c| c <= workers * 2).collect();
    levels.dedup();

    let g = rmat(&RmatOptions::paper(log_n));
    let n = checked_u32(g.num_vertices());
    let m = g.num_edges();
    eprintln!(
        "bench_engine: rmat 2^{log_n} ({n} vertices, {m} edges), {workers} workers, \
         traversal {traversal}, deadline {deadline_ms} ms"
    );

    let engine = Arc::new(Engine::new(EngineConfig {
        workers,
        queue_capacity: 256,
        cache_capacity: 64,
        default_deadline: None,
        traversal,
        memory_budget: None,
        fault: None,
        trace_dir: None,
    }));
    engine.install_graph(Arc::new(g));
    let log = Arc::new(MutationLog::new(Arc::clone(&engine), MutationConfig::default()));

    // Warm-up on a salt no level uses, so level 1 isn't pre-cached.
    for i in 0..8 {
        let h = engine.submit(pick_query(0x00dd_0000 + i, n), None).expect("warmup submit");
        assert_eq!(h.wait(), QueryStatus::Done);
    }

    let deadline = Duration::from_millis(deadline_ms);
    let mut results = Vec::new();
    for (li, &c) in levels.iter().enumerate() {
        let r = run_level(&engine, &log, write_ratio, li, c, per_client, deadline, n);
        eprintln!(
            "  c={:<3} {:>6.1} q/s  p50 {:>7.2} ms  p95 {:>7.2} ms  p99 {:>7.2} ms  \
             queue-wait p95 {:>7.2} ms  rejected {}  deadline-misses {}",
            r.concurrency,
            r.throughput_qps,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.queue_wait_p95_ms,
            r.rejected,
            r.deadline_misses,
        );
        if r.mutations > 0 {
            eprintln!(
                "        writes {:<4} epochs {:<4} apply p50 {:.3} ms  p95 {:.3} ms  \
                 max {:.3} ms  shed {}",
                r.mutations,
                r.epochs_published,
                r.mutation_p50_ms,
                r.mutation_p95_ms,
                r.mutation_max_ms,
                r.writes_shed,
            );
        }
        results.push(r);
    }

    let stats = engine.stats();
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"graph\": {{\"family\": \"rmat\", \"log_n\": {log_n}, \"vertices\": {n}, \
         \"edges\": {m}}},\n  \"workers\": {workers},\n  \"traversal\": \"{traversal}\",\n  \
         \"deadline_ms\": {deadline_ms},\n  \"per_client\": {per_client},\n  \
         \"write_ratio\": {write_ratio},\n  \"mutation_batches\": {},\n  \
         \"compactions\": {},\n  \"compaction_failures\": {},\n  \
         \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"levels\": [\n",
        stats.mutation_batches,
        stats.compactions,
        stats.compaction_failures,
        stats.cache_hits,
        stats.cache_misses
    ));
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"concurrency\": {}, \"queries\": {}, \"rejected\": {}, \"cancelled\": {}, \
             \"deadline_misses\": {}, \"elapsed_s\": {:.3}, \"throughput_qps\": {:.2}, \
             \"p50_ms\": {:.3}, \"p95_ms\": {:.3}, \"p99_ms\": {:.3}, \
             \"queue_wait_p95_ms\": {:.3}, \
             \"hist_p50_ms\": {:.3}, \"hist_p95_ms\": {:.3}, \"hist_p99_ms\": {:.3}, \
             \"mutations\": {}, \"writes_shed\": {}, \"mutation_p50_ms\": {:.3}, \
             \"mutation_p95_ms\": {:.3}, \"mutation_max_ms\": {:.3}, \
             \"epochs_published\": {}}}{}\n",
            r.concurrency,
            r.queries,
            r.rejected,
            r.cancelled,
            r.deadline_misses,
            r.elapsed_s,
            r.throughput_qps,
            r.p50_ms,
            r.p95_ms,
            r.p99_ms,
            r.queue_wait_p95_ms,
            r.hist_p50_ms,
            r.hist_p95_ms,
            r.hist_p99_ms,
            r.mutations,
            r.writes_shed,
            r.mutation_p50_ms,
            r.mutation_p95_ms,
            r.mutation_max_ms,
            r.epochs_published,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let mut f = std::fs::File::create(&out_path).expect("create output file");
    f.write_all(json.as_bytes()).expect("write results");
    eprintln!("bench_engine: wrote {out_path}");

    // The point of concurrency: more clients must not mean less work done.
    let first = results.first().expect("at least one level");
    let best = results.iter().map(|r| r.throughput_qps).fold(0.0f64, f64::max);
    assert!(
        best >= first.throughput_qps * 0.9,
        "throughput collapsed under concurrency: best {best:.1} q/s vs single-client {:.1} q/s",
        first.throughput_qps
    );
    let starved: u64 = results.iter().map(|r| r.deadline_misses).sum();
    assert_eq!(starved, 0, "queries starved past their deadline");
}
