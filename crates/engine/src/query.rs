//! The typed query vocabulary and its dispatch onto the traced apps.
//!
//! `Query` is `Hash + Eq` so `(epoch, Query)` can key the result cache;
//! every variant therefore carries only integer parameters (PageRank runs
//! a fixed iteration count with `eps = 0` instead of a float threshold).
//! `run` validates against the snapshot first — out-of-range sources and
//! symmetry requirements come back as `Err`, never as panics, so one bad
//! request cannot take down a serving worker.

use crate::snapshot::Snapshot;
use ligra::{EdgeMapOptions, Recorder};
use ligra_apps::{
    bc_traced, bellman_ford_traced, bfs_traced, cc_traced, kcore_traced, mis_traced,
    pagerank_traced, radii_traced, BcResult, BellmanFordResult, BfsResult, CcResult, KCoreResult,
    MisResult, PageRankResult, RadiiResult, INFINITE_DISTANCE, UNREACHED,
};

/// PageRank damping factor used by every engine query (the paper's value).
pub const PAGERANK_ALPHA: f64 = 0.85;

/// One analytics request against a snapshot.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Query {
    /// Breadth-first search from `source`.
    Bfs {
        /// Root vertex.
        source: u32,
    },
    /// Single-source betweenness centrality (Brandes) from `source`.
    Bc {
        /// Root vertex.
        source: u32,
    },
    /// Connected components (label propagation). Symmetric graphs only.
    Cc,
    /// PageRank for exactly `iters` damped iterations (`eps = 0`).
    PageRank {
        /// Iterations to run.
        iters: u32,
    },
    /// Multi-BFS graph radii estimation with sample seed `seed`.
    Radii {
        /// Sample-selection seed.
        seed: u64,
    },
    /// Bellman-Ford shortest paths from `source` (unit weights unless a
    /// weighted graph was installed).
    BellmanFord {
        /// Root vertex.
        source: u32,
    },
    /// k-core decomposition (peeling). Symmetric graphs only.
    KCore,
    /// Maximal independent set with priority seed `seed`. Symmetric
    /// graphs only.
    Mis {
        /// Priority seed.
        seed: u64,
    },
}

impl Query {
    /// Every query-kind name, indexed by [`Query::kind_index`]. The
    /// metrics registry keys its per-kind latency histograms off this
    /// array, so the order is part of the closed metric vocabulary.
    pub const KIND_NAMES: [&'static str; 8] =
        ["bfs", "bc", "cc", "pagerank", "radii", "bellman-ford", "kcore", "mis"];

    /// Dense index of this query's kind into [`Query::KIND_NAMES`].
    pub fn kind_index(&self) -> usize {
        match self {
            Query::Bfs { .. } => 0,
            Query::Bc { .. } => 1,
            Query::Cc => 2,
            Query::PageRank { .. } => 3,
            Query::Radii { .. } => 4,
            Query::BellmanFord { .. } => 5,
            Query::KCore => 6,
            Query::Mis { .. } => 7,
        }
    }

    /// Short stable name, used in spans and the wire protocol.
    pub fn name(&self) -> &'static str {
        match self {
            Query::Bfs { .. } => "bfs",
            Query::Bc { .. } => "bc",
            Query::Cc => "cc",
            Query::PageRank { .. } => "pagerank",
            Query::Radii { .. } => "radii",
            Query::BellmanFord { .. } => "bellman-ford",
            Query::KCore => "kcore",
            Query::Mis { .. } => "mis",
        }
    }

    /// Whether this query only makes sense on a symmetric graph.
    pub fn needs_symmetric(&self) -> bool {
        matches!(self, Query::Cc | Query::KCore | Query::Mis { .. })
    }

    fn source(&self) -> Option<u32> {
        match *self {
            Query::Bfs { source } | Query::Bc { source } | Query::BellmanFord { source } => {
                Some(source)
            }
            _ => None,
        }
    }

    /// Checks this query against a snapshot without running it.
    pub fn validate(&self, snap: &Snapshot) -> Result<(), String> {
        let n = snap.num_vertices();
        if n == 0 {
            return Err("graph is empty".to_string());
        }
        if let Some(s) = self.source() {
            if s as usize >= n {
                return Err(format!("source {s} out of range (n = {n})"));
            }
        }
        if self.needs_symmetric() && !snap.graph().is_symmetric() {
            return Err(format!("{} requires a symmetric graph", self.name()));
        }
        Ok(())
    }

    /// Coarse upper estimate of the bytes this query's run allocates on
    /// `snap`: per-vertex app state plus frontier buffers, plus the
    /// unit-weight twin Bellman-Ford builds when no weighted graph was
    /// installed. The memory-budget admission check sums these for
    /// in-flight queries — it bounds the order of magnitude of engine
    /// memory pressure, not the exact byte count.
    pub fn estimated_run_bytes(&self, snap: &Snapshot) -> u64 {
        let n = snap.num_vertices() as u64;
        let m = snap.num_edges() as u64;
        let per_vertex: u64 = match self {
            Query::Bfs { .. } => 8,          // parent + dist (u32 each)
            Query::Bc { .. } => 24,          // sigma + dependency (f64) + visited
            Query::Cc => 8,                  // label + prev label
            Query::PageRank { .. } => 16,    // rank + next (f64 each)
            Query::Radii { .. } => 20,       // radii + two 64-bit visit masks / 8
            Query::BellmanFord { .. } => 12, // i64 dist + relaxed flag
            Query::KCore => 8,               // coreness + live degree
            Query::Mis { .. } => 9,          // priority (u64) + state
        };
        let weighted_twin = match self {
            // Building the unit-weight twin copies offsets and targets
            // and materializes one weight per arc.
            Query::BellmanFord { .. } if !snap.weighted_ready() => 8 * n + 8 * m,
            _ => 0,
        };
        // Frontier overhead: dense bitsets both ways plus sparse output
        // buffers, called 8 bytes per vertex.
        n * (per_vertex + 8) + weighted_twin
    }

    /// Runs the query on `snap`, delivering per-round telemetry to `rec`.
    /// `opts` carries the traversal policy and the cancellation token; a
    /// cancelled run still returns `Ok` with whatever partial state the
    /// app drained to — the scheduler discards it based on the token.
    pub fn run<R: Recorder>(
        &self,
        snap: &Snapshot,
        opts: EdgeMapOptions,
        rec: &mut R,
    ) -> Result<QueryOutput, String> {
        self.validate(snap)?;
        let g = snap.graph().as_ref();
        Ok(match *self {
            Query::Bfs { source } => QueryOutput::Bfs(bfs_traced(g, source, opts, rec)),
            Query::Bc { source } => QueryOutput::Bc(bc_traced(g, source, opts, rec)),
            Query::Cc => QueryOutput::Cc(cc_traced(g, opts, rec)),
            Query::PageRank { iters } => QueryOutput::PageRank(pagerank_traced(
                g,
                PAGERANK_ALPHA,
                0.0,
                iters as usize,
                opts,
                rec,
            )),
            Query::Radii { seed } => QueryOutput::Radii(radii_traced(g, seed, opts, rec)),
            Query::BellmanFord { source } => QueryOutput::BellmanFord(bellman_ford_traced(
                snap.weighted().as_ref(),
                source,
                opts,
                rec,
            )),
            Query::KCore => QueryOutput::KCore(kcore_traced(g, opts, rec)),
            Query::Mis { seed } => QueryOutput::Mis(mis_traced(g, seed, opts, rec)),
        })
    }
}

/// The result of a completed query, wrapping the app-level result struct.
#[derive(Debug, Clone)]
pub enum QueryOutput {
    /// BFS parents/distances.
    Bfs(BfsResult),
    /// Brandes dependency scores.
    Bc(BcResult),
    /// Component labels.
    Cc(CcResult),
    /// Ranks.
    PageRank(PageRankResult),
    /// Estimated radii.
    Radii(RadiiResult),
    /// Shortest-path distances.
    BellmanFord(BellmanFordResult),
    /// Coreness values.
    KCore(KCoreResult),
    /// Independent-set membership.
    Mis(MisResult),
}

impl QueryOutput {
    /// Flat key/value summary for the wire protocol: small scalar facts
    /// only, never the full per-vertex vectors.
    pub fn summary(&self) -> Vec<(&'static str, String)> {
        match self {
            QueryOutput::Bfs(r) => vec![
                ("rounds", r.rounds.to_string()),
                ("reached", r.reached.to_string()),
                ("max_dist", max_reached(&r.dist).to_string()),
            ],
            QueryOutput::Bc(r) => {
                let sum: f64 = r.dependencies.iter().sum();
                vec![("rounds", r.rounds.to_string()), ("dependency_sum", format!("{sum:.6}"))]
            }
            QueryOutput::Cc(r) => {
                let mut labels: Vec<u32> = r.label.clone();
                labels.sort_unstable();
                labels.dedup();
                vec![("rounds", r.rounds.to_string()), ("components", labels.len().to_string())]
            }
            QueryOutput::PageRank(r) => {
                let sum: f64 = r.rank.iter().sum();
                vec![
                    ("iterations", r.iterations.to_string()),
                    ("rank_sum", format!("{sum:.6}")),
                    ("final_error", format!("{:.3e}", r.final_error)),
                ]
            }
            QueryOutput::Radii(r) => vec![
                ("rounds", r.rounds.to_string()),
                ("samples", r.sample.len().to_string()),
                ("max_radius", r.radii.iter().copied().max().unwrap_or(0).to_string()),
            ],
            QueryOutput::BellmanFord(r) => {
                let reached = r.dist.iter().filter(|&&d| d != INFINITE_DISTANCE).count();
                vec![
                    ("rounds", r.rounds.to_string()),
                    ("reached", reached.to_string()),
                    ("negative_cycle", r.negative_cycle.to_string()),
                ]
            }
            QueryOutput::KCore(r) => {
                vec![("rounds", r.rounds.to_string()), ("max_core", r.max_core.to_string())]
            }
            QueryOutput::Mis(r) => {
                vec![("rounds", r.rounds.to_string()), ("set_size", r.size().to_string())]
            }
        }
    }
}

fn max_reached(dist: &[u32]) -> u32 {
    dist.iter().copied().filter(|&d| d != UNREACHED).max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::Snapshot;
    use ligra::NoopRecorder;
    use ligra_graph::generators::{cycle, grid3d};
    use ligra_graph::{build_graph, BuildOptions};
    use std::sync::Arc;

    fn snap(g: ligra_graph::Graph) -> Snapshot {
        Snapshot::from_graph(1, Arc::new(g))
    }

    #[test]
    fn out_of_range_source_is_an_error_not_a_panic() {
        let s = snap(cycle(8));
        let err = Query::Bfs { source: 99 }.run(&s, EdgeMapOptions::new(), &mut NoopRecorder);
        assert!(err.is_err());
        assert!(err.unwrap_err().contains("out of range"));
    }

    #[test]
    fn symmetry_requirement_is_an_error_on_directed_graphs() {
        let g = build_graph(4, &[(0, 1), (1, 2)], BuildOptions::directed());
        let s = snap(g);
        for q in [Query::Cc, Query::KCore, Query::Mis { seed: 1 }] {
            let err = q.run(&s, EdgeMapOptions::new(), &mut NoopRecorder);
            assert!(err.unwrap_err().contains("symmetric"), "{q:?}");
        }
        // Directed BFS is fine.
        assert!(Query::Bfs { source: 0 }.run(&s, EdgeMapOptions::new(), &mut NoopRecorder).is_ok());
    }

    #[test]
    fn every_query_runs_on_a_symmetric_graph() {
        let s = snap(grid3d(4));
        let queries = [
            Query::Bfs { source: 0 },
            Query::Bc { source: 0 },
            Query::Cc,
            Query::PageRank { iters: 5 },
            Query::Radii { seed: 1 },
            Query::BellmanFord { source: 0 },
            Query::KCore,
            Query::Mis { seed: 1 },
        ];
        for q in queries {
            let out = q.run(&s, EdgeMapOptions::new(), &mut NoopRecorder).unwrap();
            let summary = out.summary();
            assert!(!summary.is_empty(), "{q:?}");
        }
    }

    #[test]
    fn bellman_ford_on_unit_weights_matches_bfs_depth() {
        let s = snap(grid3d(4));
        let bfs = Query::Bfs { source: 0 }.run(&s, EdgeMapOptions::new(), &mut NoopRecorder);
        let bf = Query::BellmanFord { source: 0 }.run(&s, EdgeMapOptions::new(), &mut NoopRecorder);
        match (bfs.unwrap(), bf.unwrap()) {
            (QueryOutput::Bfs(b), QueryOutput::BellmanFord(w)) => {
                for v in 0..s.num_vertices() {
                    assert_eq!(b.dist[v] as i64, w.dist[v], "vertex {v}");
                }
            }
            _ => unreachable!(),
        }
    }
}
