//! A long-lived concurrent query engine over Ligra graph snapshots.
//!
//! The traversal crates answer one query on one graph in one call; this
//! crate turns them into a *service*:
//!
//! * [`snapshot`] — immutable epoch-stamped graph versions behind `Arc`,
//!   so graph installs never disturb in-flight queries;
//! * [`query`] — the typed query vocabulary (BFS, BC, CC, PageRank,
//!   Radii, Bellman-Ford, k-core, MIS) and its dispatch onto the traced
//!   apps, with validation instead of panics;
//! * [`scheduler`] — bounded admission queue, fixed worker pool,
//!   per-query deadlines, and cooperative cancellation that yields at
//!   edgeMap round boundaries via [`ligra::CancelToken`];
//! * [`cache`] — an LRU of results keyed `(epoch, query)`;
//! * [`mutate`] — the live-update path ([`MutationLog`]): batched
//!   edge/vertex deltas applied as cheap overlay graphs, each publishing
//!   a new epoch, with background compaction back to a flat CSR;
//! * [`span`] — per-query lifecycle telemetry (queue wait, run time,
//!   rounds executed before completion or cancellation), carrying a
//!   `trace_id` that joins engine spans to on-disk kernel traces;
//! * [`metrics`] — the lock-free serving-tier metrics registry
//!   (striped counters, gauges, log-bucketed latency histograms) and
//!   its hand-rolled Prometheus text exposition;
//! * [`lockdep`] — named-site tracked lock guards; with the
//!   `lock-check` feature every engine-tier acquisition feeds the
//!   runtime lock-order oracle (`LockOracle`), which aborts on the
//!   first cycle-closing acquisition with both threads' witness chains;
//! * [`error`] — typed terminal errors ([`QueryError`]) distinguishing
//!   validation failures, injected transient faults, and caught panics;
//! * [`wire`] — the flat-JSONL request/response format spoken by the
//!   `ligra-serve` binary;
//! * [`backoff`] — the deterministic jittered-exponential retry
//!   schedule shared by the serve client pump and the router's
//!   reconnect/probe loops;
//! * [`route`] — the replicated serving router behind `ligra-route`:
//!   per-backend Healthy/Degraded/Down state machine, least-outstanding
//!   read routing with failover, journaled write fan-out with replay,
//!   and the graceful-shutdown drain helpers (DESIGN.md §16).
//!
//! Robustness (DESIGN.md §11): workers isolate query panics with
//! `catch_unwind` and self-heal; admission sheds on a memory budget
//! ([`SubmitError::Overloaded`]) and at dequeue when queue wait consumed
//! the deadline ([`QueryStatus::Shed`]); the `fault-inject` feature arms
//! deterministic fault schedules ([`FaultPlan`], re-exported from
//! `ligra`) at named points for chaos testing.

#![warn(missing_docs)]

pub mod backoff;
pub mod cache;
pub mod error;
pub mod lockdep;
pub mod metrics;
pub mod mutate;
pub mod query;
pub mod route;
pub mod scheduler;
pub mod snapshot;
pub mod span;
pub mod wire;

pub use backoff::Backoff;
pub use cache::ResultCache;
pub use error::QueryError;
pub use ligra::{FaultAction, FaultError, FaultPlan, FaultPoint};
pub use lockdep::{LockOracle, LockReport, LockViolation, TrackedGuard};
pub use metrics::{Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot};
pub use mutate::{
    CompactionReport, MutateError, MutationConfig, MutationLog, MutationReport, MutationStatus,
};
pub use query::{Query, QueryOutput, PAGERANK_ALPHA};
pub use route::{BackendState, Router, RouterConfig, RouterMetrics};
pub use scheduler::{Engine, EngineConfig, EngineStats, QueryHandle, SubmitError};
pub use snapshot::{GraphStore, Snapshot};
pub use span::{spans_to_json_lines, QuerySpan, QueryStatus, RoundCounter, TeeRecorder};
pub use wire::{error_response, JsonObj, Request};
