//! Jittered exponential backoff for transient-failure retry loops.
//!
//! One schedule shared by every retrying client in the serving tier:
//! the `ligra-serve --client` pump, and `ligra-route`'s backend
//! reconnect/probe loop. The delay for attempt `k` is a capped
//! exponential base (`base_ms << k`, clamped at `cap_ms`) plus up to
//! 50% deterministic jitter derived from a caller-supplied salt, so a
//! fleet of retrying clients neither stampedes in lockstep nor
//! diverges between runs of the same seed — the whole schedule is a
//! pure function of `(salt, attempt)`.
//!
//! When the server supplied an explicit `retry_after_ms` hint (an
//! overload shed naming its own horizon), the hint overrides the
//! computed delay: the server knows its queue better than our curve.

use crate::metrics::mix64;
use std::time::Duration;

/// A deterministic jittered-exponential retry schedule.
#[derive(Debug, Clone, Copy)]
pub struct Backoff {
    /// First-attempt base delay, milliseconds.
    pub base_ms: u64,
    /// Upper clamp on the exponential base, milliseconds (jitter may
    /// add up to 50% on top).
    pub cap_ms: u64,
    /// Jitter stream selector — distinct salts (request ordinal,
    /// backend id) get distinct but reproducible jitter.
    pub salt: u64,
}

impl Backoff {
    /// The schedule the serve client has always used: 10ms base,
    /// 640ms cap (10 << 6).
    pub fn serve_client(salt: u64) -> Self {
        Backoff { base_ms: 10, cap_ms: 640, salt }
    }

    /// The delay before retry `attempt` (0-based): capped exponential
    /// base plus deterministic jitter in `[0, base/2]`.
    pub fn delay(&self, attempt: u32) -> Duration {
        let base = self
            .base_ms
            .saturating_mul(1u64 << attempt.min(63) as u64)
            .min(self.cap_ms.max(self.base_ms));
        let jitter =
            mix64(self.salt.wrapping_mul(31).wrapping_add(attempt as u64)) % (base / 2 + 1);
        Duration::from_millis(base.saturating_add(jitter))
    }

    /// [`Backoff::delay`], with a server-supplied `retry_after_ms`
    /// hint taking precedence over the computed schedule.
    pub fn delay_with_hint(&self, attempt: u32, retry_after_ms: Option<u64>) -> Duration {
        match retry_after_ms {
            Some(ms) => Duration::from_millis(ms),
            None => self.delay(attempt),
        }
    }
}

/// Pulls `"retry_after_ms":N` out of a flat-JSON response line, if
/// present — the wire-format side of the hint override.
pub fn retry_after_ms(resp: &str) -> Option<u64> {
    let rest = resp.split_once("\"retry_after_ms\":")?.1;
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic_in_salt_and_attempt() {
        let a = Backoff::serve_client(7);
        let b = Backoff::serve_client(7);
        for attempt in 0..10 {
            assert_eq!(a.delay(attempt), b.delay(attempt), "attempt {attempt}");
        }
        // A different salt draws different jitter somewhere in the run.
        let c = Backoff::serve_client(8);
        assert!((0..10).any(|k| a.delay(k) != c.delay(k)), "salts share a jitter stream");
    }

    #[test]
    fn base_grows_exponentially_then_caps() {
        let b = Backoff { base_ms: 10, cap_ms: 640, salt: 0 };
        for attempt in 0..16u32 {
            let base = 10u64.saturating_mul(1 << attempt.min(63)).min(640);
            let d = b.delay(attempt).as_millis() as u64;
            assert!(d >= base, "attempt {attempt}: {d} < base {base}");
            assert!(d <= base + base / 2, "attempt {attempt}: {d} > base+50% jitter");
        }
        // Far past the cap the delay stays bounded.
        assert!(b.delay(60).as_millis() as u64 <= 640 + 320);
    }

    #[test]
    fn huge_attempt_counts_never_overflow() {
        let b = Backoff { base_ms: u64::MAX / 2, cap_ms: u64::MAX, salt: 3 };
        // saturating arithmetic: no panic, no wraparound to a tiny delay.
        assert!(b.delay(u32::MAX).as_millis() > 0);
    }

    #[test]
    fn retry_after_hint_overrides_the_curve() {
        let b = Backoff::serve_client(1);
        assert_eq!(b.delay_with_hint(3, Some(25)), Duration::from_millis(25));
        assert_eq!(b.delay_with_hint(3, None), b.delay(3));
    }

    #[test]
    fn retry_after_ms_parses_flat_json() {
        assert_eq!(
            retry_after_ms(r#"{"ok":false,"transient":true,"retry_after_ms":120}"#),
            Some(120)
        );
        assert_eq!(retry_after_ms(r#"{"ok":true}"#), None);
        assert_eq!(retry_after_ms(r#"{"retry_after_ms":"soon"}"#), None);
    }
}
