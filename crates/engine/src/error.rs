//! Typed terminal errors for submitted queries.
//!
//! PR-4-era engines carried a bare `String`; the robustness layer needs
//! structure — a waiter must be able to tell a validation failure from
//! an injected transient fault from a caught panic, because each implies
//! a different client action (fix the request, retry with backoff, or
//! report a bug / fault-injection finding).

use std::any::Any;

/// Why a query reached the `Failed` or `Panicked` terminal state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// The query was invalid for its snapshot (out-of-range source,
    /// symmetry requirement). Not retryable: fix the request.
    App(String),
    /// A fault-injection schedule fired a spurious transient error at
    /// the named point. Retryable: a re-submitted query takes a fresh
    /// pass through the schedule.
    Injected {
        /// Fault-point name (`engine.dispatch`, `edgemap.round`, ...).
        point: &'static str,
        /// 1-based hit count at which the schedule fired.
        hit: u64,
    },
    /// The query panicked and the worker caught the unwind. The worker
    /// self-heals; the panic is confined to this query.
    Panicked {
        /// Where the panic originated: a fault-point name when the
        /// unwind carried a typed `FaultError` payload, else
        /// `"query.run"` (the app itself) or `"scheduler"` (a caught
        /// scheduler bug).
        point: &'static str,
        /// The panic message, best effort (`&str`/`String` payloads).
        msg: String,
    },
}

impl QueryError {
    /// Whether a client retry is a reasonable response to this error.
    pub fn is_transient(&self) -> bool {
        matches!(self, QueryError::Injected { .. })
    }
}

impl std::fmt::Display for QueryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueryError::App(msg) => f.write_str(msg),
            QueryError::Injected { point, hit } => {
                write!(f, "fault-inject: injected fault at {point} (hit {hit})")
            }
            QueryError::Panicked { point, msg } => {
                write!(f, "query panicked at {point}: {msg}")
            }
        }
    }
}

impl std::error::Error for QueryError {}

/// Classifies a caught unwind payload. Typed `FaultError` payloads map
/// back to their fault point (an injected `Error` at a point with no
/// `Result` channel stays a transient [`QueryError::Injected`], an
/// injected panic becomes [`QueryError::Panicked`] at its point); plain
/// `panic!` payloads keep their message.
pub fn classify_panic(payload: &(dyn Any + Send)) -> QueryError {
    if let Some(fe) = payload.downcast_ref::<ligra::FaultError>() {
        if fe.action == ligra::FaultAction::Error {
            return QueryError::Injected { point: fe.point.name(), hit: fe.hit };
        }
        return QueryError::Panicked { point: fe.point.name(), msg: fe.to_string() };
    }
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "opaque panic payload".to_string());
    QueryError::Panicked { point: "query.run", msg }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ligra::{FaultAction, FaultError, FaultPoint};
    use std::panic::{catch_unwind, panic_any, AssertUnwindSafe};

    #[test]
    fn classify_plain_panics_keeps_the_message() {
        let payload =
            catch_unwind(AssertUnwindSafe(|| panic!("index out of bounds: 7"))).unwrap_err();
        let err = classify_panic(payload.as_ref());
        assert_eq!(
            err,
            QueryError::Panicked { point: "query.run", msg: "index out of bounds: 7".into() }
        );
        assert!(!err.is_transient());
    }

    #[test]
    fn classify_typed_fault_payloads_by_action() {
        let boom =
            FaultError { point: FaultPoint::EdgemapRound, hit: 3, action: FaultAction::Panic };
        let payload = catch_unwind(AssertUnwindSafe(|| panic_any(boom))).unwrap_err();
        match classify_panic(payload.as_ref()) {
            QueryError::Panicked { point: "edgemap.round", .. } => {}
            other => panic!("unexpected {other:?}"),
        }

        let spurious =
            FaultError { point: FaultPoint::EdgemapRound, hit: 2, action: FaultAction::Error };
        let payload = catch_unwind(AssertUnwindSafe(|| panic_any(spurious))).unwrap_err();
        let err = classify_panic(payload.as_ref());
        assert_eq!(err, QueryError::Injected { point: "edgemap.round", hit: 2 });
        assert!(err.is_transient());
    }

    #[test]
    fn display_is_stable_and_greppable() {
        let e = QueryError::Panicked { point: "query.run", msg: "boom".into() };
        assert_eq!(e.to_string(), "query panicked at query.run: boom");
        let e = QueryError::Injected { point: "engine.cache", hit: 1 };
        assert!(e.to_string().contains("engine.cache"));
        assert_eq!(QueryError::App("bad".into()).to_string(), "bad");
    }
}
