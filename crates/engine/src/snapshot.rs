//! Immutable graph snapshots and the epoch-stamped store that serves them.
//!
//! Queries never observe a half-installed graph: the engine hands each
//! query an `Arc<Snapshot>` captured at submit time, and installing a new
//! graph bumps the epoch and swaps the store's current pointer. In-flight
//! queries keep their old snapshot alive through the `Arc`; the result
//! cache keys on `(epoch, query)` so stale results can never be served
//! for a newer graph.

use crate::lockdep::{tracked_read, tracked_write};
use ligra_graph::{Graph, WeightedGraph};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// One immutable graph version, stamped with the epoch at which it was
/// installed.
///
/// The unweighted view is the canonical one (every query except
/// Bellman-Ford runs on it). The weighted view is either the installed
/// weighted graph, or a lazily built unit-weight twin so that
/// Bellman-Ford queries work on any snapshot; it is built at most once
/// per snapshot (`OnceLock`) and shared by every query that needs it.
pub struct Snapshot {
    epoch: u64,
    graph: Arc<Graph>,
    weighted: OnceLock<Arc<WeightedGraph>>,
}

impl Snapshot {
    /// Wraps an unweighted graph; the weighted view is built on demand
    /// with unit weights.
    pub fn from_graph(epoch: u64, graph: Arc<Graph>) -> Self {
        Snapshot { epoch, graph, weighted: OnceLock::new() }
    }

    /// Wraps a weighted graph; the unweighted view strips the weights
    /// eagerly (it is the common case for queries).
    pub fn from_weighted(epoch: u64, wg: Arc<WeightedGraph>) -> Self {
        let graph = Arc::new(strip_weights(&wg));
        let weighted = OnceLock::new();
        let _ = weighted.set(wg);
        Snapshot { epoch, graph, weighted }
    }

    /// Epoch at which this snapshot was installed.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The unweighted view.
    pub fn graph(&self) -> &Arc<Graph> {
        &self.graph
    }

    /// The weighted view: the installed weighted graph, or a unit-weight
    /// twin built (once) from the unweighted one.
    pub fn weighted(&self) -> &Arc<WeightedGraph> {
        self.weighted.get_or_init(|| Arc::new(unit_weights(&self.graph)))
    }

    /// Whether the weighted view already exists (installed weighted, or
    /// the unit-weight twin has been built). Admission control uses this
    /// to decide if a Bellman-Ford query will pay the twin's footprint.
    pub fn weighted_ready(&self) -> bool {
        self.weighted.get().is_some()
    }

    /// The cache-sized vertex partitioning for the partitioned
    /// traversal. The cache lives on the [`Graph`] itself, so every
    /// query bound to this snapshot — and every snapshot wrapping the
    /// same `Arc<Graph>` — shares one lazily built instance.
    pub fn partitioning(&self) -> Arc<ligra_graph::Partitioning> {
        self.graph.partitioning()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }

    /// Number of directed edges (arcs).
    pub fn num_edges(&self) -> usize {
        self.graph.num_edges()
    }
}

fn strip_weights(wg: &WeightedGraph) -> Graph {
    // `stripped` shares the base arrays and preserves any delta overlay,
    // so the unweighted view of a mutated snapshot costs O(overlay).
    if wg.is_symmetric() {
        Graph::symmetric(wg.out_adj().stripped())
    } else {
        Graph::directed(wg.out_adj().stripped(), wg.in_adj().stripped())
    }
}

fn unit_weights(g: &Graph) -> WeightedGraph {
    // `unit_weighted` likewise preserves overlay structure: Bellman-Ford
    // on a live-mutated snapshot sees the same view as every other query.
    let out = g.out_adj().unit_weighted();
    if g.is_symmetric() {
        Graph::symmetric(out)
    } else {
        Graph::directed(out, g.in_adj().unit_weighted())
    }
}

/// The engine's mutable cell: the current snapshot plus a monotone epoch
/// counter. Readers (`current`) take a shared lock for the duration of an
/// `Arc` clone only.
pub struct GraphStore {
    current: RwLock<Option<Arc<Snapshot>>>,
    next_epoch: AtomicU64,
}

impl GraphStore {
    /// An empty store; queries are rejected until a graph is installed.
    pub fn new() -> Self {
        GraphStore { current: RwLock::new(None), next_epoch: AtomicU64::new(1) }
    }

    fn install(&self, make: impl FnOnce(u64) -> Snapshot) -> u64 {
        let epoch = self.next_epoch.fetch_add(1, Ordering::Relaxed);
        let snap = Arc::new(make(epoch));
        // Tracked site (poison-recovering): the store swap is a single
        // pointer assignment, never left half-done by an unwind.
        *tracked_write(&self.current, "store.current") = Some(snap);
        epoch
    }

    /// Installs an unweighted graph as the new current snapshot and
    /// returns its epoch.
    pub fn install_graph(&self, g: Arc<Graph>) -> u64 {
        self.install(|e| Snapshot::from_graph(e, g))
    }

    /// Installs a weighted graph as the new current snapshot and returns
    /// its epoch.
    pub fn install_weighted(&self, g: Arc<WeightedGraph>) -> u64 {
        self.install(|e| Snapshot::from_weighted(e, g))
    }

    /// The current snapshot, if any graph has been installed.
    pub fn current(&self) -> Option<Arc<Snapshot>> {
        tracked_read(&self.current, "store.current").clone()
    }
}

impl Default for GraphStore {
    fn default() -> Self {
        GraphStore::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ligra_graph::generators::{cycle, random_local, random_weights};

    #[test]
    fn epochs_are_monotone_and_snapshots_survive_reinstall() {
        let store = GraphStore::new();
        assert!(store.current().is_none());
        let e1 = store.install_graph(Arc::new(cycle(8)));
        let old = store.current().unwrap();
        let e2 = store.install_graph(Arc::new(cycle(16)));
        assert!(e2 > e1);
        // The old snapshot is still usable by an in-flight query.
        assert_eq!(old.num_vertices(), 8);
        assert_eq!(store.current().unwrap().num_vertices(), 16);
    }

    #[test]
    fn snapshot_partitioning_is_shared_through_the_graph_arc() {
        let g = Arc::new(random_local(300, 4, 5));
        let snap = Snapshot::from_graph(1, Arc::clone(&g));
        let p = snap.partitioning();
        assert_eq!(p.num_vertices(), 300);
        // Same Arc on re-read, and the same instance the raw graph hands
        // out — one partitioning per graph, however many snapshots.
        assert!(Arc::ptr_eq(&p, &snap.partitioning()));
        assert!(Arc::ptr_eq(&p, &g.partitioning()));
    }

    #[test]
    fn unit_weight_twin_matches_structure() {
        let g = random_local(200, 4, 7);
        let snap = Snapshot::from_graph(1, Arc::new(g));
        let wg = snap.weighted();
        assert_eq!(wg.num_vertices(), snap.num_vertices());
        assert_eq!(wg.num_edges(), snap.num_edges());
        assert!(wg.out_weights(0).iter().all(|&w| w == 1));
        // Built once: second call returns the same Arc.
        assert!(Arc::ptr_eq(wg, snap.weighted()));
    }

    #[test]
    fn weighted_install_strips_to_same_structure() {
        let g = random_local(100, 3, 9);
        let wg = random_weights(&g, 20, 3);
        let snap = Snapshot::from_weighted(4, Arc::new(wg));
        assert_eq!(snap.graph().num_edges(), snap.weighted().num_edges());
        assert_eq!(snap.epoch(), 4);
        assert!(snap.graph().is_symmetric());
    }
}
